package twopcp_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"
)

// CLI smoke tests: build each command once and drive the full
// generate → decompose → export workflow through real binaries.

func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIGenerateDecomposeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	tensorgen := buildCmd(t, dir, "tensorgen")
	twopcpBin := buildCmd(t, dir, "twopcp")

	// Dense low-rank tensor → decompose → factors exported as CSV.
	tpath := filepath.Join(dir, "t.tpdn")
	out := runCmd(t, tensorgen, "-kind", "lowrank", "-dims", "16x16x16",
		"-rank", "2", "-noise", "0", "-seed", "3", "-out", tpath)
	if !strings.Contains(out, "dense [16 16 16]") {
		t.Fatalf("tensorgen output: %s", out)
	}
	prefix := filepath.Join(dir, "factors")
	out = runCmd(t, twopcpBin, "-in", tpath, "-rank", "2", "-parts", "2",
		"-schedule", "HO", "-replacement", "FOR", "-buffer", "0.5",
		"-out-prefix", prefix)
	if !strings.Contains(out, "fit") || !strings.Contains(out, "data swaps") {
		t.Fatalf("twopcp output: %s", out)
	}
	// An exactly low-rank tensor should report a high fit.
	var fit float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "fit") {
			idx := strings.Index(line, ":")
			if _, err := fmt.Sscan(strings.TrimSpace(line[idx+1:]), &fit); err != nil {
				t.Fatalf("parse fit from %q: %v", line, err)
			}
		}
	}
	if fit < 0.9 {
		t.Fatalf("CLI fit = %g\n%s", fit, out)
	}
	for m := 0; m < 3; m++ {
		csv := prefix + "-mode" + string(rune('0'+m)) + ".csv"
		data, err := os.ReadFile(csv)
		if err != nil {
			t.Fatalf("factor CSV missing: %v", err)
		}
		if lines := strings.Count(string(data), "\n"); lines != 16 {
			t.Fatalf("%s has %d rows, want 16", csv, lines)
		}
	}
}

func TestCLITiledOutOfCore(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	tensorgen := buildCmd(t, dir, "tensorgen")
	twopcpBin := buildCmd(t, dir, "twopcp")

	// Stream-generate a tiled low-rank tensor, then decompose it fully
	// out-of-core (tiled input + file-backed Phase-2 store).
	tpath := filepath.Join(dir, "big.tptl")
	out := runCmd(t, tensorgen, "-kind", "lowrank", "-dims", "18x16x14",
		"-rank", "2", "-noise", "0", "-tiles", "3x2x2", "-seed", "3", "-out", tpath)
	if !strings.Contains(out, "tiled dense [18 16 14]") {
		t.Fatalf("tensorgen output: %s", out)
	}
	out = runCmd(t, twopcpBin, "-in", tpath, "-rank", "2", "-parts", "2",
		"-buffer", "0.5", "-store", filepath.Join(dir, "units"))
	if !strings.Contains(out, "tensor     : [18 16 14]") {
		t.Fatalf("twopcp output: %s", out)
	}
	var fit float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "fit") {
			idx := strings.Index(line, ":")
			if _, err := fmt.Sscan(strings.TrimSpace(line[idx+1:]), &fit); err != nil {
				t.Fatalf("parse fit from %q: %v", line, err)
			}
		}
	}
	if fit < 0.9 {
		t.Fatalf("tiled CLI fit = %g\n%s", fit, out)
	}

	// Gzip-compressed tiles decompose identically.
	zpath := filepath.Join(dir, "big-gz.tptl")
	runCmd(t, tensorgen, "-kind", "lowrank", "-dims", "18x16x14",
		"-rank", "2", "-noise", "0", "-tiles", "3x2x2", "-seed", "3", "-gzip", "-out", zpath)
	outGz := runCmd(t, twopcpBin, "-in", zpath, "-rank", "2", "-parts", "2",
		"-buffer", "0.5", "-store", filepath.Join(dir, "units-gz"))
	if !strings.Contains(outGz, "tensor     : [18 16 14]") {
		t.Fatalf("gzip twopcp output: %s", outGz)
	}
	// The dense kind streams too.
	dpath := filepath.Join(dir, "dense.tptl")
	runCmd(t, tensorgen, "-kind", "dense", "-dims", "12x12x12", "-density", "0.5",
		"-tiles", "2", "-seed", "5", "-out", dpath)
	runCmd(t, twopcpBin, "-in", dpath, "-rank", "2", "-parts", "2")
	// Sparse kinds cannot be tiled.
	cmd := exec.Command(tensorgen, "-kind", "epinions", "-out", filepath.Join(dir, "bad.tptl"))
	if err := cmd.Run(); err == nil {
		t.Fatal("sparse kind accepted for .tptl output")
	}
}

func TestCLISparseAndErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	tensorgen := buildCmd(t, dir, "tensorgen")
	twopcpBin := buildCmd(t, dir, "twopcp")

	spath := filepath.Join(dir, "s.tpsp")
	runCmd(t, tensorgen, "-kind", "epinions", "-seed", "4", "-out", spath)
	out := runCmd(t, twopcpBin, "-in", spath, "-rank", "3", "-parts", "2")
	if !strings.Contains(out, "tensor     : [170 1000 18]") {
		t.Fatalf("sparse decompose output: %s", out)
	}

	// Unknown schedule must fail loudly.
	cmd := exec.Command(twopcpBin, "-in", spath, "-schedule", "XX")
	if err := cmd.Run(); err == nil {
		t.Fatal("bad schedule accepted")
	}
	// Garbage input file must fail loudly.
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, []byte("GARBAGE"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(twopcpBin, "-in", bad)
	if err := cmd.Run(); err == nil {
		t.Fatal("garbage input accepted")
	}
}

// TestCLICrashRecovery SIGKILLs a checkpointed decomposition mid-Phase-2
// through the real binary and verifies the resumed run's factors and
// result JSON are bit-for-bit identical to an uninterrupted run (the CI
// crash-recovery job runs the same scenario via scripts/crash_recovery.sh).
func TestCLICrashRecovery(t *testing.T) {
	crashRecoveryScenario(t,
		[]string{"-kind", "lowrank", "-dims", "30x30x30", "-rank", "3",
			"-noise", "0.3", "-tiles", "3x3x3", "-seed", "11"},
		[]string{"-rank", "3", "-parts", "3", "-buffer", "0.5",
			"-iters", "500", "-tol=-1", "-seed", "11"})
}

// TestCLICrashRecoveryAccelerated runs the same kill-and-resume scenario
// with the Tucker accelerator on a low-multilinear-rank input: Phase 0 is
// recomputed deterministically on a Phase-1 resume and skipped on a
// Phase-2 resume, so the resumed run must still match bit for bit.
func TestCLICrashRecoveryAccelerated(t *testing.T) {
	crashRecoveryScenario(t,
		[]string{"-kind", "lowmlrank", "-dims", "30x30x30", "-mlrank", "4", "-diag",
			"-noise", "1e-5", "-tiles", "3x3x3", "-seed", "11"},
		[]string{"-rank", "6", "-parts", "3", "-buffer", "0.5", "-accelerator", "tucker",
			"-iters", "500", "-tol=-1", "-seed", "11"})
}

func crashRecoveryScenario(t *testing.T, genArgs, decompArgs []string) {
	t.Helper()
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	tensorgen := buildCmd(t, dir, "tensorgen")
	twopcpBin := buildCmd(t, dir, "twopcp")

	tpath := filepath.Join(dir, "x.tptl")
	runCmd(t, tensorgen, append(genArgs, "-out", tpath)...)

	args := append([]string{"-in", tpath}, decompArgs...)

	refJSON := filepath.Join(dir, "ref.json")
	runCmd(t, twopcpBin, append(args, "-out-prefix", filepath.Join(dir, "ref"), "-json", refJSON)...)

	// Start the checkpointed run and kill it hard once Phase 2 has
	// checkpointed at least once.
	ckpt := filepath.Join(dir, "ckpt")
	cmd := exec.Command(twopcpBin, append(args, "-checkpoint", ckpt, "-checkpoint-steps", "1")...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	phase2 := filepath.Join(ckpt, "phase2.ckpt")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(phase2); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("no Phase-2 checkpoint appeared within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // let it advance past the first checkpoint
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v (run may have finished too early — enlarge the workload)", err)
	}
	if err := cmd.Wait(); err == nil {
		t.Fatal("killed run exited cleanly; the kill landed after completion")
	}

	// Resume and compare everything deterministic against the reference.
	resJSON := filepath.Join(dir, "res.json")
	out := runCmd(t, twopcpBin, append(args, "-resume", ckpt, "-out-prefix", filepath.Join(dir, "res"), "-json", resJSON)...)
	if !strings.Contains(out, "fit") {
		t.Fatalf("resume output: %s", out)
	}
	for m := 0; m < 3; m++ {
		ref, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("ref-mode%d.csv", m)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("res-mode%d.csv", m)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, res) {
			t.Fatalf("mode-%d factors differ between reference and resumed run", m)
		}
	}
	var ref, res map[string]any
	refData, err := os.ReadFile(refJSON)
	if err != nil {
		t.Fatal(err)
	}
	resData, err := os.ReadFile(resJSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(refData, &ref); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(resData, &res); err != nil {
		t.Fatal(err)
	}
	// Wall clock legitimately differs between the runs, and a resumed run
	// reports fewer Phase-1 sweeps (checkpoint-restored blocks recompute
	// nothing). Everything else in run_stats — swaps, hit rate, store
	// traffic — must match bit for bit.
	for _, m := range []map[string]any{ref, res} {
		rs, ok := m["run_stats"].(map[string]any)
		if !ok {
			t.Fatalf("result JSON has no run_stats object: %v", m)
		}
		for _, k := range []string{"phase0_ns", "phase1_ns", "phase2_ns", "phase1_sweeps", "retries"} {
			delete(rs, k)
		}
	}
	if !reflect.DeepEqual(ref, res) {
		t.Fatalf("result JSON differs:\nreference: %v\nresumed:   %v", ref, res)
	}
}

// TestCLIGracefulDrain sends a real SIGTERM to a checkpointed run and
// verifies the drain contract: the process writes its checkpoint, exits
// with the distinct "drained" code 3, and a -resume run finishes
// bit-identical to an uninterrupted one.
func TestCLIGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	tensorgen := buildCmd(t, dir, "tensorgen")
	twopcpBin := buildCmd(t, dir, "twopcp")

	tpath := filepath.Join(dir, "x.tptl")
	runCmd(t, tensorgen, "-kind", "lowrank", "-dims", "30x30x30", "-rank", "3",
		"-noise", "0.3", "-tiles", "3x3x3", "-seed", "11", "-out", tpath)
	args := []string{"-in", tpath, "-rank", "3", "-parts", "3", "-buffer", "0.5",
		"-iters", "500", "-tol=-1", "-seed", "11"}

	refJSON := filepath.Join(dir, "ref.json")
	runCmd(t, twopcpBin, append(args, "-out-prefix", filepath.Join(dir, "ref"), "-json", refJSON)...)

	// Start the checkpointed run and SIGTERM it once Phase 2 is underway.
	ckpt := filepath.Join(dir, "ckpt")
	cmd := exec.Command(twopcpBin, append(args, "-checkpoint", ckpt, "-checkpoint-steps", "1")...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	phase2 := filepath.Join(ckpt, "phase2.ckpt")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(phase2); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("no Phase-2 checkpoint appeared within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v (run may have finished too early — enlarge the workload)", err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("drained run: err = %v, want exit code 3\nstderr: %s", err, stderr.String())
	}
	if code := ee.ExitCode(); code != 3 {
		t.Fatalf("drained run exit code = %d, want 3\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "draining") {
		t.Errorf("no drain notice on stderr:\n%s", stderr.String())
	}
	if _, err := os.Stat(phase2); err != nil {
		t.Fatalf("checkpoint missing after drain: %v", err)
	}

	// Resume must be bit-exact against the uninterrupted reference.
	resJSON := filepath.Join(dir, "res.json")
	runCmd(t, twopcpBin, append(args, "-resume", ckpt,
		"-out-prefix", filepath.Join(dir, "res"), "-json", resJSON)...)
	for m := 0; m < 3; m++ {
		ref, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("ref-mode%d.csv", m)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("res-mode%d.csv", m)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, res) {
			t.Fatalf("mode-%d factors differ between reference and drained+resumed run", m)
		}
	}
	var ref, res map[string]any
	refData, err := os.ReadFile(refJSON)
	if err != nil {
		t.Fatal(err)
	}
	resData, err := os.ReadFile(resJSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(refData, &ref); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(resData, &res); err != nil {
		t.Fatal(err)
	}
	for _, m := range []map[string]any{ref, res} {
		rs, ok := m["run_stats"].(map[string]any)
		if !ok {
			t.Fatalf("result JSON has no run_stats object: %v", m)
		}
		for _, k := range []string{"phase0_ns", "phase1_ns", "phase2_ns", "phase1_sweeps", "retries"} {
			delete(rs, k)
		}
	}
	if !reflect.DeepEqual(ref, res) {
		t.Fatalf("result JSON differs:\nreference: %v\nresumed:   %v", ref, res)
	}
}

// TestCLIStdoutContract pins the CLI's stream discipline: stdout is
// reserved for machine-parseable output. Without -json the binary writes
// NOTHING to stdout (the human summary goes to stderr); with -json stdout
// is exactly one JSON object. The telemetry flags must not leak onto
// stdout either, and the trace they produce must pass tracecheck.
func TestCLIStdoutContract(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	tensorgen := buildCmd(t, dir, "tensorgen")
	twopcpBin := buildCmd(t, dir, "twopcp")
	tracecheck := buildCmd(t, dir, "tracecheck")

	tpath := filepath.Join(dir, "x.tptl")
	runCmd(t, tensorgen, "-kind", "lowrank", "-dims", "16x14x12", "-rank", "2",
		"-noise", "0", "-tiles", "2", "-seed", "7", "-out", tpath)

	tracePath := filepath.Join(dir, "run.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")
	run := func(extra ...string) (stdout, stderr string) {
		t.Helper()
		var outBuf, errBuf bytes.Buffer
		cmd := exec.Command(twopcpBin, append([]string{"-in", tpath, "-rank", "2",
			"-parts", "2", "-buffer", "0.5", "-seed", "7",
			"-trace", tracePath, "-metrics", metricsPath,
			"-progress", "1ms"}, extra...)...)
		cmd.Stdout = &outBuf
		cmd.Stderr = &errBuf
		if err := cmd.Run(); err != nil {
			t.Fatalf("twopcp %v: %v\n%s", extra, err, errBuf.String())
		}
		return outBuf.String(), errBuf.String()
	}

	stdout, stderr := run()
	if stdout != "" {
		t.Errorf("stdout not empty without -json:\n%q", stdout)
	}
	if !strings.Contains(stderr, "fit") || !strings.Contains(stderr, "data swaps") {
		t.Errorf("human summary missing from stderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, "progress") {
		t.Errorf("-progress 1ms produced no progress lines on stderr:\n%s", stderr)
	}

	jsonPath := filepath.Join(dir, "out.json")
	stdout, _ = run("-json", jsonPath)
	if stdout != "" {
		t.Errorf("stdout not empty with -json FILE:\n%q", stdout)
	}
	var parsed struct {
		Fit      float64        `json:"fit"`
		RunStats map[string]any `json:"run_stats"`
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("-json output is not a JSON object: %v\n%s", err, data)
	}
	if parsed.Fit < 0.9 || parsed.RunStats == nil {
		t.Errorf("-json output incomplete: fit=%v run_stats=%v", parsed.Fit, parsed.RunStats)
	}
	if _, ok := parsed.RunStats["swaps"]; !ok {
		t.Errorf("run_stats has no swaps field: %v", parsed.RunStats)
	}

	// The -json FILE value "-" streams the object to stdout — then stdout
	// must be exactly that object and nothing else.
	stdout, _ = run("-json", "-")
	var onStdout map[string]any
	if err := json.Unmarshal([]byte(stdout), &onStdout); err != nil {
		t.Errorf("-json - stdout is not exactly one JSON object: %v\n%q", err, stdout)
	}

	// The trace (appended across all three runs) validates cleanly, and
	// the metrics snapshot parses.
	var tcOut, tcErr bytes.Buffer
	tc := exec.Command(tracecheck, tracePath)
	tc.Stdout = &tcOut
	tc.Stderr = &tcErr
	if err := tc.Run(); err != nil {
		t.Fatalf("tracecheck: %v\n%s", err, tcErr.String())
	}
	if !strings.Contains(tcErr.String(), "events OK") {
		t.Errorf("tracecheck census missing:\n%s", tcErr.String())
	}
	var snap map[string]any
	mdata, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mdata, &snap); err != nil {
		t.Fatalf("metrics snapshot is not JSON: %v", err)
	}
	for _, k := range []string{"counters", "gauges", "histograms"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("metrics snapshot missing %q section", k)
		}
	}
}

func TestCLIExperimentsTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	experiments := buildCmd(t, dir, "experiments")
	out := runCmd(t, experiments, "table3")
	for _, want := range []string{"Table III", "8×8×8", "FOR"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table3 output missing %q:\n%s", want, out)
		}
	}
}

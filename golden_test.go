package twopcp_test

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twopcp"
)

// Golden-file regression suite: committed fixtures under testdata/ pin the
// exact bits the pipeline produces for every solver, so a kernel or solver
// change that drifts numerics — even in the last ulp — fails loudly
// instead of silently shifting results.
//
// Regenerate after an *intentional* numeric change with:
//
//	go test -run TestGolden -update-golden
//
// and commit the diff (including testdata/golden.tptl). The fixtures were
// recorded on linux/amd64; Go's float64 semantics make them stable across
// the toolchains CI runs.

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden fixtures")

// goldenTensor is the deterministic input shared by all golden runs.
func goldenTensor() *twopcp.Dense {
	return twopcp.RandomDense(rand.New(rand.NewSource(42)), 12, 10, 8)
}

func goldenOpts(c twopcp.Constraint, lambda float64) twopcp.Options {
	return twopcp.Options{
		Rank:           3,
		Partitions:     []int{2},
		BufferFraction: 0.5,
		MaxIters:       6,
		Tol:            1e-9,
		Seed:           42,
		Constraint:     c,
		Lambda:         lambda,
	}
}

// goldenDump serializes a Result's deterministic fields bit-exactly: every
// float64 as its 16-digit hex bit pattern. The final Fit is deliberately
// excluded — the tiled front-end legally differs from the dense one in its
// last few ulps (tile-ordered reduction); everything else must be
// bit-identical across front-ends.
func goldenDump(res *twopcp.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "iters %d converged %v swaps %d\n", res.VirtualIters, res.Converged, res.RunStats.Swaps)
	b.WriteString("trace")
	for _, f := range res.FitTrace {
		fmt.Fprintf(&b, " %016x", math.Float64bits(f))
	}
	b.WriteString("\n")
	for m, a := range res.Model.Factors {
		fmt.Fprintf(&b, "mode %d %dx%d\n", m, a.Rows, a.Cols)
		for i := 0; i < a.Rows; i++ {
			row := a.Row(i)
			for j, v := range row {
				if j > 0 {
					b.WriteString(" ")
				}
				fmt.Fprintf(&b, "%016x", math.Float64bits(v))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden-"+name+".txt")
}

// TestGoldenFixtureTensor pins the committed .tptl fixture to the
// generator: testdata/golden.tptl must hold exactly goldenTensor().
func TestGoldenFixtureTensor(t *testing.T) {
	path := filepath.Join("testdata", "golden.tptl")
	x := goldenTensor()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := twopcp.SaveTiled(path, x, []int{3, 2, 2}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := twopcp.LoadTiled(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	if len(got.Dims) != len(x.Dims) {
		t.Fatalf("fixture has %d modes, want %d", len(got.Dims), len(x.Dims))
	}
	for i := range x.Data {
		if got.Data[i] != x.Data[i] {
			t.Fatalf("fixture cell %d is %x, want %x", i, got.Data[i], x.Data[i])
		}
	}
}

// TestGoldenFactors decomposes the fixture with all three solvers through
// both the in-memory and the tiled front-end and compares the factor/trace
// dumps byte-for-byte against the committed goldens.
func TestGoldenFactors(t *testing.T) {
	x := goldenTensor()
	tiledPath := filepath.Join("testdata", "golden.tptl")
	for _, tc := range constraintCases() {
		t.Run(tc.name, func(t *testing.T) {
			opts := goldenOpts(tc.constraint, tc.lambda)
			dense, err := twopcp.Decompose(x, opts)
			if err != nil {
				t.Fatal(err)
			}
			dump := goldenDump(dense)

			path := goldenPath(tc.name)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update-golden to regenerate)", err)
			}
			if dump != string(want) {
				t.Fatalf("dense %s run drifted from golden %s:\ngot:\n%s\nwant:\n%s",
					tc.name, path, dump, want)
			}

			tiled, err := twopcp.DecomposeTiledFile(tiledPath, opts)
			if err != nil {
				t.Fatal(err)
			}
			if tdump := goldenDump(tiled); tdump != string(want) {
				t.Fatalf("tiled %s run drifted from golden %s", tc.name, path)
			}
		})
	}
}

// TestGoldenAcceleratedFactors pins the accelerated pipelines the same
// way: one hex-bit dump per accelerator, produced from the shared
// fixture tensor through both the in-memory and the tiled front-end.
// Phase 0 is deterministic (seeded sketches, serial block streaming), so
// these fixtures pin the range finder, core ALS, expansion and the short
// warm Phase-1 pass all at once.
func TestGoldenAcceleratedFactors(t *testing.T) {
	x := goldenTensor()
	tiledPath := filepath.Join("testdata", "golden.tptl")
	accels := []struct {
		name       string
		accel      twopcp.Accelerator
		oversample int
	}{
		// Oversample 2 keeps the 12×10×8 fixture's Tucker core under the
		// structural-fallback threshold (min(d,3+2)³ = 125 cells < 480),
		// so the fixture pins the accelerated path, not the fallback.
		{"accel-tucker", twopcp.AccelTucker, 2},
		{"accel-sketched", twopcp.AccelSketched, 0},
	}
	for _, tc := range accels {
		t.Run(tc.name, func(t *testing.T) {
			opts := goldenOpts(twopcp.ConstraintNone, 0)
			opts.Accelerator = tc.accel
			opts.SketchOversample = tc.oversample
			dense, err := twopcp.Decompose(x, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !dense.RunStats.Accelerated {
				t.Fatalf("%s golden run fell back — the fixture would pin the unaccelerated pipeline", tc.name)
			}
			dump := goldenDump(dense)

			path := goldenPath(tc.name)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update-golden to regenerate)", err)
			}
			if dump != string(want) {
				t.Fatalf("dense %s run drifted from golden %s:\ngot:\n%s\nwant:\n%s",
					tc.name, path, dump, want)
			}

			tiled, err := twopcp.DecomposeTiledFile(tiledPath, opts)
			if err != nil {
				t.Fatal(err)
			}
			if tdump := goldenDump(tiled); tdump != string(want) {
				t.Fatalf("tiled %s run drifted from golden %s", tc.name, path)
			}
		})
	}
}

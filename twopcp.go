package twopcp

import (
	"errors"
	"fmt"
	"time"

	"twopcp/internal/blockstore"
	"twopcp/internal/cpals"
	"twopcp/internal/grid"
	"twopcp/internal/obs"
	"twopcp/internal/par"
	"twopcp/internal/phase1"
	"twopcp/internal/refine"
	"twopcp/internal/runstate"
)

// Options configures a two-phase decomposition.
type Options struct {
	// Rank is the target CP rank F (required, positive).
	Rank int
	// Partitions gives the number of partitions per mode (the paper's
	// pattern K). A single value is broadcast to all modes; empty defaults
	// to 2 per mode. Each entry is clamped to the mode size.
	Partitions []int
	// Schedule picks the Phase-2 update schedule (default HilbertOrder,
	// the paper's best).
	Schedule Schedule
	// Replacement picks the buffer policy (default Forward, the paper's
	// best).
	Replacement Replacement
	// BufferFraction sizes the Phase-2 buffer as a fraction of the total
	// space requirement (default 1: everything fits; the paper evaluates
	// 1/3, 1/2, 2/3). Ignored when BufferBytes is set.
	BufferFraction float64
	// BufferBytes sizes the buffer absolutely when positive.
	BufferBytes int64
	// MaxIters bounds Phase-2 virtual iterations (default 100).
	MaxIters int
	// Tol is the per-virtual-iteration fit-improvement stopping threshold
	// (default 1e-2, paper §VIII-C).
	Tol float64
	// Phase1MaxIters bounds the per-block ALS sweeps (default 50).
	Phase1MaxIters int
	// Phase1Tol is the per-block ALS tolerance (default 1e-4).
	Phase1Tol float64
	// Workers bounds Phase-1 parallelism (default GOMAXPROCS).
	Workers int
	// StoreDir, when non-empty, keeps the Phase-2 data units in files
	// under this directory (true out-of-core); otherwise an in-memory
	// store with identical semantics is used.
	StoreDir string
	// Constraint selects the row-update solver applied by both phases:
	// ConstraintNone (the default) is plain least squares, bit-for-bit the
	// historical behavior; ConstraintRidge damps every normal-equation
	// solve with Lambda·I; ConstraintNonneg keeps every factor entry ≥ 0
	// (HALS updates over the cached Gram systems). All three are
	// bit-for-bit deterministic across worker counts and prefetch depths,
	// and the solver identity is part of the checkpoint fingerprint, so a
	// resume with a different constraint (or Lambda) is rejected. See the
	// "Solvers and constraints" section of the package documentation.
	Constraint Constraint
	// Lambda is the ridge damping weight; required (> 0, finite) with
	// ConstraintRidge and rejected with the other constraints.
	Lambda float64
	// Seed makes the whole run reproducible.
	Seed int64
	// Accelerator selects the Phase-0 acceleration strategy (default
	// AccelNone, bit-for-bit the historical pipeline). AccelTucker
	// Tucker-compresses the input via seeded randomized range finding,
	// solves CP on the core and warm-starts Phase 1 from the expanded
	// factors; AccelSketched solves Phase 1's large dense row updates
	// from leverage-sampled Khatri-Rao systems. Both are bit-deterministic
	// across Workers/KernelWorkers/PrefetchDepth, checkpoint/resume
	// bit-exactly, and are part of the checkpoint fingerprint (a resume
	// with different accelerator options is rejected). See the
	// "Acceleration" section of the package documentation.
	Accelerator Accelerator
	// Phase0Rank is AccelTucker's per-mode Tucker basis rank (default:
	// Rank). Only meaningful with an accelerator.
	Phase0Rank int
	// SketchOversample adds extra Gaussian probe columns to AccelTucker's
	// range finder (default 5). Only meaningful with an accelerator.
	SketchOversample int
	// KernelWorkers caps the intra-kernel parallelism of the dense compute
	// kernels (MTTKRP, Gram and GEMM row panels) for the duration of the
	// call: 0 keeps the process default (GOMAXPROCS), 1 forces serial
	// kernels, higher values allow that many concurrent panel workers.
	// Results are bit-identical at every setting — the kernels assign each
	// output region to exactly one worker and reduce partials in fixed
	// order — so the knob only changes wall clock. The cap is one
	// process-global value while the call runs: concurrent decompositions
	// may safely overlap (the last one to finish restores the process
	// default), but while calls requesting different caps overlap, the
	// most recently started cap applies to all of them.
	KernelWorkers int
	// PrefetchDepth overlaps Phase-2 I/O with compute: the engine issues
	// buffer prefetches this many schedule steps ahead of the step it is
	// updating. 0 (the default) keeps Phase 2 fully synchronous. The
	// update order — and therefore FitTrace, the factors and the swap
	// counts (RunStats.Swaps) — is identical at every depth. Raw store
	// traffic (RunStats.BytesRead) may include a few extra reads at depth
	// > 0, from prefetches issued for steps that never ran (termination
	// mid-lookahead) or whose unit was evicted before use.
	PrefetchDepth int
	// IOWorkers sizes the asynchronous I/O pool serving prefetches and
	// background write-backs (default 2 when PrefetchDepth > 0, else 0).
	IOWorkers int
	// Checkpoint, when non-empty, names a directory in which the run keeps
	// a durable, versioned manifest of its progress: every completed
	// Phase-1 block and, at schedule-step granularity, the complete
	// Phase-2 refinement state. A run killed at an arbitrary point can be
	// restarted with Resume and produces bit-for-bit identical factors,
	// FitTrace and swap counts to an uninterrupted run. See the Durability
	// section of the package documentation for exactly what is fsync'd
	// when.
	Checkpoint string
	// Resume continues the run recorded in the Checkpoint directory:
	// completed Phase-1 blocks are loaded instead of recomputed and Phase
	// 2 restarts from its latest checkpoint. The manifest's option
	// fingerprint must match this run's options (same input shape,
	// partitions, rank, schedule, replacement, buffer sizing, iteration
	// bounds, tolerances and seed — parallelism and prefetch knobs may
	// differ); resuming an already-completed run is a no-op that returns
	// the recorded Result.
	Resume bool
	// CheckpointEverySteps sets the Phase-2 checkpoint cadence in schedule
	// steps (default: one full scheduling cycle; 1 checkpoints after every
	// block position). Smaller values lose less work to a crash and cost
	// more checkpoint I/O.
	CheckpointEverySteps int
	// Observer receives the run's telemetry: structured trace events,
	// metrics and/or a synchronous event callback — see the Telemetry
	// contract in the package documentation. nil (the default) disables
	// telemetry at ~zero cost. Telemetry never influences the run:
	// results are bit-identical with any observer configuration.
	Observer *Observer
	// Retry configures the resilience layer: transient store and block
	// faults are retried with capped exponential backoff (seeded jitter),
	// per-operation deadlines bound slow I/O, and a circuit breaker trips
	// to fail-fast after repeated permanent faults. Retries never change
	// what the run computes — factors, FitTrace and the Result's I/O
	// counters are bit-identical to a fault-free run (only successful
	// operations count). The zero value disables the layer entirely.
	// Excluded from the checkpoint fingerprint: a run may be resumed with
	// different retry settings. See the "Fault tolerance" section of the
	// package documentation.
	Retry RetryPolicy
	// Stop, when non-nil, requests a graceful drain when closed: the run
	// finishes its in-flight step, writes a checkpoint (when Checkpoint is
	// set) and returns an error wrapping ErrInterrupted. The CLIs close it
	// on SIGTERM/SIGINT.
	Stop <-chan struct{}
	// Chaos injects seeded faults for resilience testing; the zero value
	// injects nothing. Excluded from the checkpoint fingerprint. See the
	// Chaos type.
	Chaos Chaos
}

// Result reports a two-phase decomposition: the numerical outputs at the
// top level, the operational statistics (timings, I/O, buffer behavior)
// grouped under RunStats.
type Result struct {
	// Model is the assembled Kruskal tensor (unit weights; scale lives in
	// the factors, matching the grid model's identity core).
	Model *KTensor
	// Fit is 1 − ‖X−X̂‖/‖X‖ against the input tensor.
	Fit float64
	// VirtualIters counts Phase-2 virtual iterations; Converged reports
	// whether Tol fired before MaxIters.
	VirtualIters int
	Converged    bool
	// FitTrace is the Phase-2 surrogate-fit trajectory.
	FitTrace []float64
	// RunStats aggregates the run's operational statistics: per-phase
	// wall time, Phase-1 sweeps, swap counts, buffer hit rate and store
	// traffic.
	RunStats RunStats
}

// applyKernelWorkers installs the KernelWorkers cap for the duration of a
// call and returns a restore function for the caller to defer. The scoped
// push/pop cannot leak a stale cap across overlapping calls, whatever
// their completion order: popping re-applies the newest still-active cap
// and the last call to finish restores the process default.
func applyKernelWorkers(opts Options) func() {
	if opts.KernelWorkers <= 0 {
		return func() {}
	}
	token := par.PushWorkers(opts.KernelWorkers)
	return func() { par.PopWorkers(token) }
}

// Decompose runs the full 2PCP pipeline on a dense tensor.
func Decompose(x *Dense, opts Options) (*Result, error) {
	defer applyKernelWorkers(opts)()
	p, err := patternFor(x.Dims, opts)
	if err != nil {
		return nil, err
	}
	src, err := phase1.NewDenseSource(x, p)
	if err != nil {
		return nil, err
	}
	res, rs, complete, err := run(src, p, opts, "dense")
	if err != nil {
		return nil, err
	}
	if complete {
		return res, nil
	}
	res.Fit = res.Model.Fit(x)
	return finishRun(rs, opts.Observer, res)
}

// DecomposeSparse runs the full 2PCP pipeline on a sparse tensor. (2PCP
// targets dense scientific tensors, but the pipeline applies unchanged;
// per-block ALS switches to sparse MTTKRP.)
func DecomposeSparse(x *COO, opts Options) (*Result, error) {
	defer applyKernelWorkers(opts)()
	p, err := patternFor(x.Dims, opts)
	if err != nil {
		return nil, err
	}
	src, err := phase1.NewCOOSource(x, p)
	if err != nil {
		return nil, err
	}
	res, rs, complete, err := run(src, p, opts, "sparse")
	if err != nil {
		return nil, err
	}
	if complete {
		return res, nil
	}
	res.Fit = res.Model.FitSparse(x)
	return finishRun(rs, opts.Observer, res)
}

// CPALS runs plain in-memory CP-ALS (the paper's "Naive CP" baseline and
// the right tool for tensors that fit comfortably in memory). It returns
// the Kruskal model, its fit and the number of sweeps.
func CPALS(x *Dense, rank int, seed int64) (*KTensor, float64, int, error) {
	kt, info, err := cpals.Decompose(x, cpals.Options{
		Rank: rank, MaxIters: 100, Tol: 1e-6, Rng: newSeeded(seed),
	})
	if err != nil {
		return nil, 0, 0, err
	}
	return kt, info.Fit, info.Iters, nil
}

func patternFor(dims []int, opts Options) (*Pattern, error) {
	if opts.Rank <= 0 {
		return nil, fmt.Errorf("twopcp: Rank must be positive, got %d", opts.Rank)
	}
	parts := opts.Partitions
	switch len(parts) {
	case 0:
		parts = make([]int, len(dims))
		for i := range parts {
			parts[i] = 2
		}
	case 1:
		v := parts[0]
		parts = make([]int, len(dims))
		for i := range parts {
			parts[i] = v
		}
	case len(dims):
		parts = append([]int(nil), parts...)
	default:
		return nil, fmt.Errorf("twopcp: %d partition counts for %d modes", len(parts), len(dims))
	}
	for i := range parts {
		if parts[i] < 1 {
			return nil, fmt.Errorf("twopcp: partition count %d on mode %d", parts[i], i)
		}
		if parts[i] > dims[i] {
			parts[i] = dims[i]
		}
	}
	return grid.New(dims, parts)
}

// run executes both phases. When opts.Checkpoint is set it opens (or
// resumes) the run manifest first; complete=true means the directory holds
// a finished run whose Result was returned without recomputation.
func run(src phase1.Source, p *Pattern, opts Options, inputKind string) (out *Result, rs *runstate.Run, complete bool, err error) {
	if err := validateCheckpointOptions(opts); err != nil {
		return nil, nil, false, err
	}
	if err := validateAccelOptions(opts); err != nil {
		return nil, nil, false, err
	}
	solver, err := opts.Constraint.solver(opts.Lambda)
	if err != nil {
		return nil, nil, false, err
	}
	ob := opts.Observer
	if ob.Tracing() {
		// The concurrency knobs (Workers, KernelWorkers, PrefetchDepth,
		// IOWorkers) are deliberately absent from run.start: the trace's
		// event multiset is identical across those settings, and keeping
		// them out of the events preserves that comparability. The gauges
		// below carry them instead.
		ob.Emit("run.start",
			obs.Str("kind", inputKind),
			obs.Str("dims", dimsLabel(p.Dims)),
			obs.Int("rank", opts.Rank),
			obs.Bool("resumed", opts.Resume))
	}
	if ob != nil && ob.Metrics != nil {
		ob.Gauge("run.workers").Set(float64(opts.Workers))
		ob.Gauge("run.kernel_workers").Set(float64(opts.KernelWorkers))
		ob.Gauge("run.prefetch_depth").Set(float64(opts.PrefetchDepth))
		ob.Gauge("run.io_workers").Set(float64(opts.IOWorkers))
	}
	if opts.Checkpoint != "" {
		rs, err = openRunState(opts, p, inputKind)
		if err != nil {
			return nil, nil, false, err
		}
		rs.SetObserver(ob)
		if opts.Resume && ob.Tracing() {
			ob.Emit("checkpoint.resume", obs.Str("stage", string(rs.Stage())))
		}
		if rs.Stage() == runstate.StageDone {
			st, err := rs.LoadResult()
			if err != nil {
				return nil, nil, false, err
			}
			res := resultFromState(st)
			emitRunDone(ob, res)
			return res, rs, true, nil
		}
	}
	out = &Result{}
	out.RunStats.Blocks = p.NumBlocks()

	// Chaos block-read faults wrap the source before Phase 1 sees it; the
	// injection RNG is independent of the run's numerics, so a healed run
	// is bit-identical to a fault-free one.
	if opts.Chaos.BlockRate > 0 || len(opts.Chaos.PoisonBlocks) > 0 {
		src = phase1.NewFaultySource(src, opts.Chaos.BlockRate, opts.Chaos.Seed, opts.Chaos.PoisonBlocks)
	}
	p1opts := phase1.Options{
		Rank:     opts.Rank,
		MaxIters: opts.Phase1MaxIters,
		Tol:      opts.Phase1Tol,
		Seed:     opts.Seed,
		Workers:  opts.Workers,
		Solver:   solver,
		Obs:      ob,
		Retry:    opts.Retry,
		Stop:     opts.Stop,
	}
	// Phase 0: the accelerator's warm start (or sampled solver) only
	// influences Phase-1 block decompositions. Once a resumed manifest has
	// advanced to Phase 2 every block is checkpointed, so recomputing the
	// warm start would be pure waste — skip it. Runs still inside Phase 1
	// recompute it deterministically, which reproduces the interrupted
	// run's blocks bit-for-bit without any Phase-0 checkpoint state.
	if opts.Accelerator != AccelNone && (rs == nil || rs.Stage() == runstate.StagePhase1) {
		start := time.Now()
		out.RunStats.Accelerated, err = runPhase0(src, opts, solver, &p1opts, ob)
		if err != nil {
			return nil, nil, false, err
		}
		out.RunStats.Phase0Time = time.Since(start)
		if rs != nil {
			if err := rs.RecordPhase0(out.RunStats.Accelerated, int64(out.RunStats.Phase0Time)); err != nil {
				return nil, nil, false, err
			}
		}
	} else if opts.Accelerator != AccelNone && rs != nil {
		// Resumed past Phase 1: Phase 0 can no longer influence anything,
		// so it is skipped — report the original run's recorded outcome
		// instead of pretending the run was never accelerated.
		accelerated, ns := rs.Phase0()
		out.RunStats.Accelerated = accelerated
		out.RunStats.Phase0Time = time.Duration(ns)
	}

	start := time.Now()
	if rs != nil {
		p1opts.Checkpoint = rs
	}
	p1, err := phase1.Run(src, p1opts)
	if err != nil {
		if errors.Is(err, phase1.ErrStopped) {
			err = fmt.Errorf("%w: drained during phase 1: %w", ErrInterrupted, err)
		}
		return nil, nil, false, err
	}
	out.RunStats.Phase1Time = time.Since(start)
	out.RunStats.Retries = p1.Retries
	out.RunStats.Phase1Sweeps = p1.TotalSweeps()
	if rs != nil {
		if err := rs.BeginPhase2(); err != nil {
			return nil, nil, false, err
		}
	}

	var store blockstore.Store
	if opts.StoreDir != "" {
		store, err = blockstore.NewFileStore(opts.StoreDir)
		if err != nil {
			return nil, nil, false, err
		}
	} else {
		store = blockstore.NewMemStore()
	}
	// Phase-2 store stack, inside out: base store → chaos fault injector
	// (testing only) → resilience wrapper (retries, deadlines, breaker) →
	// instrumentation. The resilience layer sits below instrumentation so
	// the Reads/Writes/Bytes counters record only successful operations —
	// that is what keeps a healed run's Result bit-identical to a
	// fault-free run's.
	engineStore := store
	if opts.Chaos.storeFaults() {
		fs := blockstore.NewFaultyStore(engineStore)
		fs.SetPlan(blockstore.FaultPlan{
			Seed:      opts.Chaos.Seed,
			ReadRate:  opts.Chaos.ReadRate,
			WriteRate: opts.Chaos.WriteRate,
		})
		engineStore = fs
	}
	if opts.Retry.Enabled() {
		engineStore = blockstore.Resilient(engineStore, opts.Retry, ob)
	}
	// The instrumented wrapper feeds the registry's raw blockstore
	// counters and traces Puts; Phase 2 reads through the Quiet view so
	// prefetch-issued Gets (whose count varies with PrefetchDepth) stay
	// out of the trace — the buffer's own deterministic buffer.fetch
	// events carry the read information instead.
	cfg := refine.Config{
		Phase1:          p1,
		Store:           blockstore.Instrument(engineStore, ob).Quiet(),
		Schedule:        opts.Schedule,
		Policy:          opts.Replacement,
		BufferFraction:  opts.BufferFraction,
		CapacityBytes:   opts.BufferBytes,
		MaxVirtualIters: opts.MaxIters,
		Tol:             opts.Tol,
		Seed:            opts.Seed,
		PrefetchDepth:   opts.PrefetchDepth,
		IOWorkers:       opts.IOWorkers,
		Solver:          solver,
		Obs:             ob,
	}
	cfg.Retry = opts.Retry
	cfg.Stop = opts.Stop
	if rs != nil {
		cfg.Checkpoint = rs
		cfg.CheckpointEverySteps = opts.CheckpointEverySteps
	}
	eng, err := refine.New(cfg)
	if err != nil {
		return nil, nil, false, err
	}
	start = time.Now()
	r, err := eng.Run()
	if err != nil {
		store.Close()
		if errors.Is(err, refine.ErrStopped) {
			err = fmt.Errorf("%w: drained during phase 2: %w", ErrInterrupted, err)
		}
		return nil, nil, false, err
	}
	// Close surfaces durability errors the store deferred (FileStore
	// reports directory-sync failures here rather than failing Puts).
	if err := store.Close(); err != nil {
		return nil, nil, false, err
	}
	out.RunStats.Phase2Time = time.Since(start)

	out.Model = cpals.NewKTensor(r.Factors)
	out.VirtualIters = r.VirtualIters
	out.Converged = r.Converged
	out.FitTrace = r.FitTrace
	out.RunStats.Swaps = r.BufferStats.Fetches
	out.RunStats.SwapsPerIter = r.SwapsPerVirtualIter
	out.RunStats.BufferHits = r.BufferStats.Hits
	if tot := r.BufferStats.Hits + r.BufferStats.Fetches; tot > 0 {
		out.RunStats.BufferHitRate = float64(r.BufferStats.Hits) / float64(tot)
	}
	out.RunStats.Evictions = r.BufferStats.Evictions
	out.RunStats.WriteBacks = r.BufferStats.WriteBacks
	out.RunStats.BytesRead = r.StoreStats.BytesRead
	out.RunStats.BytesWritten = r.StoreStats.BytesWritten
	out.RunStats.Retries += r.StoreStats.Retries
	if ob != nil && ob.Metrics != nil {
		// Final authoritative gauges mirroring Result.RunStats: the raw
		// blockstore counters are monotonic and include setup seeding
		// (and, on resume, re-seeding), so these gauges are where the
		// snapshot matches the Result's Phase-2-only accounting exactly.
		ob.Gauge("run.swaps").Set(float64(out.RunStats.Swaps))
		ob.Gauge("run.buffer_hit_rate").Set(out.RunStats.BufferHitRate)
		ob.Gauge("run.bytes_read").Set(float64(out.RunStats.BytesRead))
		ob.Gauge("run.bytes_written").Set(float64(out.RunStats.BytesWritten))
	}
	return out, rs, false, nil
}

// dimsLabel renders mode sizes as "I0xI1x...": a single stable string
// field beats one event field per mode for schema purposes.
func dimsLabel(dims []int) string {
	s := ""
	for i, d := range dims {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprintf("%d", d)
	}
	return s
}

// emitRunDone closes the run's trace span. It fires once per completed
// run — including the no-op resume of an already finished checkpoint
// directory, so a trace file spanning crash and resume ends with exactly
// one run.done per attempt that reached a result.
func emitRunDone(ob *obs.Observer, res *Result) {
	if !ob.Tracing() {
		return
	}
	ob.Emit("run.done",
		obs.F64("fit", res.Fit),
		obs.Int("virtual_iters", res.VirtualIters),
		obs.Bool("converged", res.Converged))
}

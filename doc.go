// Package twopcp implements 2PCP, the two-phase, block-based CP tensor
// decomposition system of Li, Huang, Candan and Sapino (ICDE 2016), for
// dense (and sparse) tensors that are too large to decompose in memory.
//
// # Overview
//
// CP (CANDECOMP/PARAFAC) decomposition factorizes an N-mode tensor X into F
// rank-one components, X ≈ Σ_f λ_f · a_f ∘ b_f ∘ c_f. For large dense
// tensors the classic in-memory ALS blows up; 2PCP instead:
//
//  1. partitions X into a grid of sub-tensors and decomposes each block
//     independently (Phase 1, parallel), then
//  2. iteratively stitches the per-block sub-factors into full factor
//     matrices (Phase 2), streaming mode-partition "data units" through a
//     bounded buffer with re-use-promoting block schedules (fiber, Z-order,
//     Hilbert-order) and a forward-looking, schedule-aware replacement
//     policy that together minimize disk I/O.
//
// # Quick start
//
//	x := twopcp.RandomDense(rand.New(rand.NewSource(1)), 64, 64, 64)
//	res, err := twopcp.Decompose(x, twopcp.Options{
//		Rank:        10,
//		Partitions:  []int{2, 2, 2},
//		Schedule:    twopcp.HilbertOrder,
//		Replacement: twopcp.Forward,
//	})
//	if err != nil { ... }
//	fmt.Printf("fit=%.4f swaps/iter=%.2f\n", res.Fit, res.SwapsPerIter)
//
// The resulting factors are in res.Model (a Kruskal tensor); res carries
// timing, convergence and I/O statistics matching the paper's evaluation
// metrics.
//
// # File formats
//
// Three binary formats cover the input side (all little-endian, detected
// by magic; cmd/tensorgen writes them, cmd/twopcp sniffs them):
//
//   - .tpdn ("TPDN"): dense — header (nmodes, dims), then Π dims float64
//     values in Fortran order. Loaded fully into memory.
//   - .tpsp ("TPSP"): sparse COO — header, nnz, then (coords, value)
//     records. Loaded fully into memory.
//   - .tptl ("TPTL"): tiled dense — grid-aligned tiles with a per-tile
//     offset index, optional gzip and CRC32. The out-of-core input path:
//     DecomposeTiledFile streams Phase 1 and the fit computation over the
//     tiles so peak memory is bounded by tile + buffer sizes, not the
//     tensor. The spec lives in internal/tfile.
//
// The .tpdn/.tpsp readers validate headers (mode counts, dim products,
// declared sizes vs the file's actual size) before allocating, so corrupt
// files fail cleanly instead of attempting absurd allocations.
//
// # Concurrency
//
// A single Decompose call is internally parallel in three places. Phase 1
// decomposes blocks on Options.Workers goroutines. The dense compute
// kernels underneath (MTTKRP, Gram, GEMM) additionally parallelize over
// row panels on a shared worker pool capped by Options.KernelWorkers.
// Phase 2, which is
// strictly sequential in the paper, optionally runs an asynchronous I/O
// pipeline: with Options.PrefetchDepth > 0 the engine issues buffer
// prefetches for the next schedule steps while updating the current one,
// and Options.IOWorkers goroutines fetch units, write dirty evictions
// back and flush in the background. The pipeline is pure data movement —
// every replacement decision is still taken synchronously in schedule
// order — so FitTrace, the factors and the swap counts are bit-for-bit
// identical at every depth (raw store byte counters may include a few
// wasted prefetch reads); only wall-clock time changes. Stores
// (blockstore) are safe for concurrent use with atomic Puts and
// private-copy Gets; the buffer manager documents its own contract in
// internal/buffer. The top-level API itself follows the usual Go rule:
// distinct Decompose calls may run concurrently (give each its own
// StoreDir), but a single Options/Result value is not for shared mutation.
// One caveat: the kernel-parallelism cap is a single process-global value,
// so while concurrent calls requesting different KernelWorkers overlap,
// the most recently started cap applies to all of them — wall clock may
// shift, results never do (see the next section).
//
// # Determinism of the parallel kernels
//
// Every parallel compute kernel is constructed so its floating-point
// output is bit-identical at every worker count, including fully serial
// runs. Two rules make that hold: (1) each output region (an MTTKRP or
// GEMM output row, a Gram panel partial) is owned by exactly one worker
// invocation and accumulated in the same element order a serial sweep
// would use; (2) where a reduction is unavoidable (GramInto, TMulInto),
// rows are split into fixed-size panels — a constant, never derived from
// the worker count — and the per-panel partials are added in ascending
// panel order. Worker counts and scheduling therefore change wall-clock
// time only. Combined with the per-block seeding of Phase 1 and the
// depth-invariant Phase-2 pipeline, an entire run is reproducible from
// Options.Seed alone regardless of Workers, KernelWorkers, IOWorkers or
// PrefetchDepth.
//
// # Architecture
//
// The public API wraps the internal packages: tensor (dense/sparse tensors,
// MTTKRP), cpals (in-memory ALS), grid (partitioning), sfc + schedule
// (traversal orders), blockstore + buffer (out-of-core data units and
// replacement policies), phase1/refine (the two phases), mapreduce + haten2
// (the MapReduce substrate and the paper's comparison baseline) and
// experiments (regenerating every table and figure of the paper). See
// DESIGN.md for the full inventory and EXPERIMENTS.md for reproduction
// results.
package twopcp

// Package twopcp implements 2PCP, the two-phase, block-based CP tensor
// decomposition system of Li, Huang, Candan and Sapino (ICDE 2016), for
// dense (and sparse) tensors that are too large to decompose in memory.
//
// # Overview
//
// CP (CANDECOMP/PARAFAC) decomposition factorizes an N-mode tensor X into F
// rank-one components, X ≈ Σ_f λ_f · a_f ∘ b_f ∘ c_f. For large dense
// tensors the classic in-memory ALS blows up; 2PCP instead:
//
//  1. partitions X into a grid of sub-tensors and decomposes each block
//     independently (Phase 1, parallel), then
//  2. iteratively stitches the per-block sub-factors into full factor
//     matrices (Phase 2), streaming mode-partition "data units" through a
//     bounded buffer with re-use-promoting block schedules (fiber, Z-order,
//     Hilbert-order) and a forward-looking, schedule-aware replacement
//     policy that together minimize disk I/O.
//
// # Quick start
//
//	x := twopcp.RandomDense(rand.New(rand.NewSource(1)), 64, 64, 64)
//	res, err := twopcp.Decompose(x, twopcp.Options{
//		Rank:        10,
//		Partitions:  []int{2, 2, 2},
//		Schedule:    twopcp.HilbertOrder,
//		Replacement: twopcp.Forward,
//	})
//	if err != nil { ... }
//	fmt.Printf("fit=%.4f swaps/iter=%.2f\n", res.Fit, res.RunStats.SwapsPerIter)
//
// The resulting factors are in res.Model (a Kruskal tensor); res carries
// timing, convergence and I/O statistics matching the paper's evaluation
// metrics.
//
// # File formats
//
// Three binary formats cover the input side (all little-endian, detected
// by magic; cmd/tensorgen writes them, cmd/twopcp sniffs them):
//
//   - .tpdn ("TPDN"): dense — header (nmodes, dims), then Π dims float64
//     values in Fortran order. Loaded fully into memory.
//   - .tpsp ("TPSP"): sparse COO — header, nnz, then (coords, value)
//     records. Loaded fully into memory.
//   - .tptl ("TPTL"): tiled dense — grid-aligned tiles with a per-tile
//     offset index, optional gzip and CRC32. The out-of-core input path:
//     DecomposeTiledFile streams Phase 1 and the fit computation over the
//     tiles so peak memory is bounded by tile + buffer sizes, not the
//     tensor. The spec lives in internal/tfile.
//
// The .tpdn/.tpsp readers validate headers (mode counts, dim products,
// declared sizes vs the file's actual size) before allocating, so corrupt
// files fail cleanly instead of attempting absurd allocations.
//
// # Concurrency
//
// A single Decompose call is internally parallel in three places. Phase 1
// decomposes blocks on Options.Workers goroutines. The dense compute
// kernels underneath (MTTKRP, Gram, GEMM) additionally parallelize over
// row panels on a shared worker pool capped by Options.KernelWorkers.
// Phase 2, which is
// strictly sequential in the paper, optionally runs an asynchronous I/O
// pipeline: with Options.PrefetchDepth > 0 the engine issues buffer
// prefetches for the next schedule steps while updating the current one,
// and Options.IOWorkers goroutines fetch units, write dirty evictions
// back and flush in the background. The pipeline is pure data movement —
// every replacement decision is still taken synchronously in schedule
// order — so FitTrace, the factors and the swap counts are bit-for-bit
// identical at every depth (raw store byte counters may include a few
// wasted prefetch reads); only wall-clock time changes. Stores
// (blockstore) are safe for concurrent use with atomic Puts and
// private-copy Gets; the buffer manager documents its own contract in
// internal/buffer. The top-level API itself follows the usual Go rule:
// distinct Decompose calls may run concurrently (give each its own
// StoreDir), but a single Options/Result value is not for shared mutation.
// One caveat: the kernel-parallelism cap is a single process-global value,
// so while concurrent calls requesting different KernelWorkers overlap,
// the most recently started cap applies to all of them — wall clock may
// shift, results never do (see the next section). None of this
// parallelism affects crash recovery either: a checkpointed run may be
// resumed with different Workers/KernelWorkers/PrefetchDepth/IOWorkers
// (see Durability below).
//
// # Determinism of the parallel kernels
//
// Every parallel compute kernel is constructed so its floating-point
// output is bit-identical at every worker count, including fully serial
// runs. Two rules make that hold: (1) each output region (an MTTKRP or
// GEMM output row, a Gram panel partial) is owned by exactly one worker
// invocation and accumulated in the same element order a serial sweep
// would use; (2) where a reduction is unavoidable (GramInto, TMulInto),
// rows are split into fixed-size panels — a constant, never derived from
// the worker count — and the per-panel partials are added in ascending
// panel order. Worker counts and scheduling therefore change wall-clock
// time only. Combined with the per-block seeding of Phase 1 and the
// depth-invariant Phase-2 pipeline, an entire run is reproducible from
// Options.Seed alone regardless of Workers, KernelWorkers, IOWorkers or
// PrefetchDepth. This contract is also what makes crash recovery exact:
// replaying the schedule from a checkpoint reproduces the uninterrupted
// run bit for bit (next section), what makes retrying failed storage
// operations invisible: a retried run computes the same bits as a
// fault-free one (see Fault tolerance below), and what makes run traces
// comparable across configurations: the telemetry layer only observes
// points this contract fixes, so traces are deterministic too (see the
// Telemetry contract below).
//
// # Solvers and constraints
//
// Options.Constraint swaps the row-block solver that both phases apply —
// the one numerical operation the two-phase architecture leaves open.
// Every mode update (Phase 1's per-block ALS sweeps, Phase 2's partition
// refinements) reduces to the normal equations A·V = M over an F×F Gram
// system; the solver decides how that system is solved:
//
//   - ConstraintNone (default): plain least squares via Cholesky with a
//     pseudo-inverse fallback. Bit-for-bit the historical behavior — the
//     solver seam adds no floating-point operation to this path.
//   - ConstraintRidge: Tikhonov damping, A = M·(V + Λ·I)⁻¹ with
//     Λ = Options.Lambda (> 0 required). Every eigenvalue of the system is
//     lifted by Λ, so the solve stays on the Cholesky fast path with
//     conditioning bounded by (λ_max+Λ)/Λ even when collinear factor
//     columns make V numerically singular.
//   - ConstraintNonneg: element-wise nonnegative factors via HALS
//     (hierarchical ALS) updates over the cached Gram system, warm-started
//     from the current factor. Cost is rows·F² per update — the same
//     order as the Cholesky solve it replaces — so MTTKRP still dominates
//     and a constrained sweep stays within 2× of an unconstrained one
//     (gated in CI by cmd/benchgate).
//
// What every solver guarantees, and tests enforce:
//
//   - Normalization: cpals folds column norms into the Kruskal weights λ
//     after every update; solver outputs are safe to normalize (nonneg
//     factors stay nonneg under positive column scaling, λ stays ≥ 0),
//     and Phase 1's λ^(1/N) folding preserves the constraint in the
//     sub-factors. Phase 2 updates factors at model scale (identity
//     core), so SurrogateFit needs no solver-specific adjustment.
//   - Determinism: solvers are serial and fixed-order, so the full
//     determinism contract (bit-identical results at every worker count,
//     kernel worker count, and prefetch depth) holds for all three modes.
//   - Resume fingerprints: the constraint name and ridge weight join the
//     checkpoint manifest fingerprint. A constrained run checkpoints and
//     resumes bit-exact (fault-injection sweeps cover all three modes),
//     and resuming with a different constraint or Lambda is refused.
//     Manifests written before solvers existed resume as ConstraintNone.
//
// # Phase-0 acceleration
//
// Options.Accelerator optionally runs a "Phase 0" ahead of Phase 1 to
// cut the cost of the cold per-block ALS — the stage that dominates a
// brute-force run on structured data:
//
//   - AccelTucker (compress-then-refine): a randomized range finder
//     streams the tensor's blocks once per mode and builds per-mode
//     orthonormal bases Q_n via a Gaussian sketch + Householder QR
//     (rank Options.Phase0Rank, default Rank, plus SketchOversample
//     extra probe columns, default 5). The tensor is projected onto the
//     small Tucker core G = X ×₁ Q₁ᵀ ×₂ Q₂ᵀ …, CP-ALS runs to
//     convergence in that compressed space (multistart pilot + polish —
//     the core is tiny, so restarts are nearly free), and the core
//     factors are expanded back as A_n = Q_n·Â_n to warm-start Phase 1.
//     Warm-started blocks then need only a short local polish: when
//     Phase1MaxIters is left at its default, the per-block sweep budget
//     drops to 3 (an explicit Phase1MaxIters overrides it). Phase 2
//     refines globally as usual.
//   - AccelSketched: Phase-1 row updates go through a leverage-score
//     sampled least-squares solver (CP-ARLS-LEV style): each mode
//     update solves a row-sampled Khatri-Rao system instead of the full
//     one. Sampling only engages when the Khatri-Rao system is tall
//     enough to be worth it (more rows than the sample budget, 128·F);
//     below that the wrapped exact solver runs unchanged, bit for bit.
//     The last mode of every sweep is always exact, so the reported fit
//     trace is an exact trace. The wrapper composes with the
//     constrained solvers — sampled nonneg/ridge updates solve the
//     sampled system under the same constraint.
//
// When Phase 0 cannot help it says so rather than slowing the run down:
// if the compressed core would hold at least half the tensor's cells
// (no usable low-multilinear-rank structure, or the tensor is simply
// small), AccelTucker falls back to brute force before reading a single
// block. Result.RunStats.Accelerated reports what actually happened; the CLI
// prints "accelerator: tucker (active|fell back to brute force)". CI
// gates the contract from both sides with cmd/benchgate and
// BENCH_phase0_sketch.json: on the benchmark's low-multilinear-rank
// input the accelerated (Phase 0 + Phase 1) wall clock must stay ≥ 3×
// faster than brute-force Phase 1 with the converged fits within 1e-3,
// and a structural fallback must cost ≤ 5% over never asking.
//
// Acceleration changes where the iterations are spent, never the
// pipeline's contracts. Phase 0 is deterministic from Options.Seed
// (seeded sketches, serial block streaming, fixed multistart order), so
// accelerated runs stay bit-identical across Workers, KernelWorkers,
// IOWorkers and PrefetchDepth, and dense/tiled front-ends produce the
// same bits. The accelerator name and both knobs join the checkpoint
// manifest fingerprint — resuming with different accelerator options is
// refused — while the Phase-0 *outcome* (Accelerated, wall clock) is
// recorded in the manifest as data: a resume that lands mid-Phase-2
// skips Phase 0 entirely and still reports the original outcome. The
// nonneg constraint survives the warm start (expansion clamps, HALS
// keeps it); golden fixtures pin the accelerated numerics bit-exactly.
//
// # Durability and crash recovery
//
// Long decompositions survive crashes when Options.Checkpoint names a
// directory (CLI: -checkpoint / -resume). The directory holds a
// versioned manifest (JSON envelope with a CRC32-protected body)
// recording the run's option fingerprint, stage and per-block Phase-1
// completion, plus binary checkpoint files: one per completed Phase-1
// block (sub-factors + fit), the latest Phase-2 state (schedule
// position, FitTrace so far, every current factor partition, a buffer-
// manager snapshot and cumulative I/O statistics) and, once the run
// completes, the final Result.
//
// Exactly what is fsync'd when: every manifest update and checkpoint
// file is written to a temp file in the checkpoint directory, fsync'd,
// renamed into place, and the directory is fsync'd — readers observe
// either the previous or the new complete version, never a torn write.
// A Phase-1 block is durable before it is marked complete in the
// manifest; the Phase-2 state file is replaced atomically at every
// checkpoint (cadence: Options.CheckpointEverySteps schedule steps,
// default one cycle); the final Result file is installed before the
// manifest flips to "done". The Phase-2 data-unit store itself needs no
// crash consistency: on resume the units are rewritten from the
// checkpointed factors, so even the in-memory store resumes correctly.
// (FileStore Puts are nonetheless fsync-before-rename — see
// internal/blockstore — with directory syncs deferred to Close.)
//
// A run killed at an arbitrary point and restarted with Options.Resume
// skips completed blocks, replays Phase 2 from the last checkpoint, and
// produces bit-for-bit identical factors, FitTrace and Swaps to an
// uninterrupted run — enforced by tests that inject faults at dozens of
// interruption points and by CI's SIGKILL crash-recovery job. The
// manifest fingerprint covers everything that changes results (shape,
// partitions, rank, schedule, replacement, buffer sizing, bounds,
// tolerances, seed); resuming with a mismatched fingerprint is refused,
// resuming a completed run returns the recorded Result without
// recomputation, and parallelism/prefetch knobs may differ between the
// original and resumed processes because results never depend on them
// (see the two sections above). Durability composes with telemetry: a
// resumed run pointed at the same trace file appends to the pre-crash
// event stream, metric counters are persisted in the Phase-2 checkpoint
// and restored on resume, and a checkpoint.resume event marks the seam
// (see the Telemetry contract below). Durability covers the process
// dying; storage that misbehaves while the process lives is the Fault
// tolerance contract's job (next section).
//
// # Fault tolerance
//
// Options.Retry arms a resilience layer for storage that fails without
// killing the process — transient I/O errors, slow or hung operations,
// and blocks that never load (CLI: -retry, -op-timeout). Faults divide
// into exactly two classes (blockstore.IsTransient): transient
// (ErrTransient, ErrTimeout) and permanent (everything else), and each
// class has one behavior:
//
//   - Transient faults are retried, up to Retry.MaxRetries per
//     operation, with capped exponential backoff and deterministic
//     seeded jitter. Both phases go through the same retry core
//     (blockstore.Retryer): Phase 2's store reads and writes via the
//     blockstore.Resilient wrapper, Phase 1's block loads and
//     checkpoint saves directly. Per-op deadlines (Retry.OpTimeout) are
//     enforced cooperatively — stores implementing DeadlineStore bound
//     their own work and return an ErrTimeout-wrapped error — so there
//     are no watchdog goroutines and no abandoned I/O. The buffer
//     manager degrades rather than fails: a broken prefetch falls back
//     to a synchronous demand fetch, and a failed asynchronous
//     write-back is retried and, if its budget runs out, surfaces at
//     the next step boundary AFTER an emergency checkpoint is written.
//     A circuit breaker (Retry.BreakerThreshold consecutive permanent
//     failures) flips the store to fail-fast so a dead backend
//     surfaces in seconds, not after every caller burns its budget.
//   - Permanent faults are never retried. In Phase 1 a block whose
//     load fails permanently (or exhausts its budget) is quarantined:
//     its siblings complete and checkpoint, the run fails with a typed
//     *QuarantineError naming the blocks, the CLI exits with code 4,
//     and a resume over healed storage recomputes only the quarantined
//     blocks.
//
// The invariant that makes retries safe is the same one that makes
// worker counts safe (see Determinism above): a retry can change what a
// run survives, never what it computes. Failed attempts do not count in
// Stats (Reads/Writes/Bytes count successful operations only), so
// factors, FitTrace, swap counts and store traffic are bit-identical to
// a fault-free run — scripts/chaos.sh and CI's chaos job enforce
// bit-parity at injected fault rates of 0.1% and 1%, composed with the
// SIGKILL crash-recovery scenario. Because the policy cannot change
// results it is excluded from the checkpoint manifest fingerprint: a
// resumed run may use a different retry policy (or none) than the run
// that wrote the checkpoint.
//
// Graceful drain closes the loop for operator-initiated shutdown: when
// Options.Stop is closed (the CLIs translate the first SIGTERM/SIGINT;
// a second signal kills), both phases stop at the next block or step
// boundary, write their checkpoint, and return an error wrapping
// ErrInterrupted — exit code 3 — leaving a directory that resumes
// bit-exactly.
//
// Recovery is observable, not silent: retries and breaker trips are
// counted in Result.RunStats.Retries and blockstore Stats, and emitted
// as store.retry / store.breaker trace events (schema-validated like
// every event; see the Telemetry contract below). For a single-process
// run, cmd/tracecheck -run-stats reconciles the trace's store.retry
// count against run_stats.retries exactly. The armed-but-idle layer is
// ~free: BenchmarkResilienceOverhead and BENCH_resilience.json gate it
// at ≤ 2% over the unwrapped engine in CI.
//
// # Telemetry contract
//
// Options.Observer attaches run telemetry: a structured JSONL event
// trace (Observer.Trace, a Recorder from NewRecorder or OpenTrace), a
// metrics registry of counters/gauges/histograms (Observer.Metrics,
// from NewRegistry), and/or a synchronous callback (Observer.OnEvent).
// The CLIs expose the same sinks as -trace, -metrics, -pprof and
// -progress; scalar run statistics come back in Result.RunStats either
// way. Three guarantees define the contract (internal/obs documents
// the mechanics):
//
//   - Telemetry never influences the run. No code path reads an
//     observer to make a decision, so factors, FitTrace and every
//     RunStats field are bit-identical with telemetry on, off, or
//     partially attached. This is the same determinism contract the
//     parallel kernels follow (see above), extended to observation.
//   - The trace itself is deterministic. Events are emitted only at
//     points whose occurrence is fixed by the schedule — buffer
//     replacement decisions under the manager mutex, per-block Phase-1
//     completions, schedule steps — so the multiset of events minus
//     the wall-clock ts/dur fields is identical across Workers,
//     KernelWorkers, IOWorkers and PrefetchDepth. Operations whose
//     count legitimately varies with concurrency (prefetch-issued
//     store reads, batched manifest rewrites) are metrics-only;
//     checkpoint.write byte counts carry real file sizes and are
//     exempt. The event catalog is a closed schema
//     (internal/obs.Schema); ValidateTraceLine and cmd/tracecheck
//     enforce it.
//   - Disabled telemetry is ~free. A nil Observer costs a nil check on
//     hot paths (subsystems bind counter handles once at setup), gated
//     in CI by BenchmarkObsOverhead and BENCH_obs.json: live counters
//     must cost ≤ 2% on the in-memory Phase-2 engine and the disabled
//     path's allocation count is pinned.
//
// Telemetry survives crashes with the run: OpenTrace appends, so a
// resumed run extends the original event stream (checkpoint.resume
// marks the boundary), and the registry's counters are snapshotted
// into every Phase-2 checkpoint and restored on resume, so cumulative
// metrics are exact across the interruption (see Durability above).
// Recovery activity is part of the trace: store.retry and
// store.breaker events record every absorbed fault, and
// Result.RunStats.Retries reconciles with the trace's store.retry
// count via cmd/tracecheck -run-stats (see Fault tolerance above).
//
// # Running as a service
//
// cmd/twopcpd serves decompositions over HTTP: submit a Spec (the same
// knobs as Options, JSON-encoded), watch progress as a Server-Sent
// Events stream, download the factors as CSV. The service layer
// (internal/jobs) adds no numerics of its own — jobs run through
// DecomposeFile, so a job's factors are bit-identical to the same file
// decomposed locally — and inherits the contracts above: job records
// are fsync'd with the runstate machinery (Durability), SIGTERM drains
// every running job through Options.Stop and exits 3 (the CLI drain
// contract), permanent faults land jobs in a quarantined state (the
// exit-4 analog, Fault tolerance), and per-job event streams fan out
// through FanOut so slow watchers never block a run (Telemetry). A
// restarted daemon requeues and resumes in-flight jobs bit-exactly.
// docs/service.md is the walkthrough; docs/API.md the wire contract.
//
// # Architecture
//
// The public API wraps the internal packages: tensor (dense/sparse tensors,
// MTTKRP), cpals (in-memory ALS), grid (partitioning), sfc + schedule
// (traversal orders), blockstore + buffer (out-of-core data units and
// replacement policies), runstate (durable manifests and checkpoints),
// phase1/refine (the two phases), jobs + cli (the twopcpd service layer
// and the shared CLI plumbing), mapreduce + haten2 (the MapReduce
// substrate and the paper's comparison baseline) and experiments
// (regenerating every table and figure of the paper). docs/ARCHITECTURE.md
// holds the full layer map and the daemon request lifecycle; the
// walkthroughs live in docs/ and are indexed from README.md.
package twopcp

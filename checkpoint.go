package twopcp

import (
	"fmt"
	"math"
	"time"

	"twopcp/internal/cpals"
	"twopcp/internal/runstate"
)

// openRunState opens (or resumes) the checkpoint directory's run manifest
// for the resolved pattern. The manifest's option fingerprint covers every
// field that changes the run's results; parallelism and I/O-pipeline knobs
// are excluded, so a run may be resumed with different Workers /
// KernelWorkers / PrefetchDepth / IOWorkers settings (results are
// bit-identical at every setting — see the determinism contract in the
// package documentation).
func openRunState(opts Options, p *Pattern, inputKind string) (*runstate.Run, error) {
	solver, err := opts.Constraint.solver(opts.Lambda)
	if err != nil {
		return nil, err
	}
	meta := runstate.Meta{
		InputKind:      inputKind,
		Dims:           append([]int(nil), p.Dims...),
		Partitions:     append([]int(nil), p.K...),
		Rank:           opts.Rank,
		Schedule:       opts.Schedule.String(),
		Replacement:    opts.Replacement.String(),
		BufferFraction: opts.BufferFraction,
		BufferBytes:    opts.BufferBytes,
		MaxIters:       opts.MaxIters,
		Tol:            finiteTol(opts.Tol),
		Phase1MaxIters: opts.Phase1MaxIters,
		Phase1Tol:      finiteTol(opts.Phase1Tol),
		Seed:           opts.Seed,
		Constraint:     cpals.FingerprintName(solver),
		Lambda:         opts.Lambda,
		// Accelerator knobs are recorded as passed (zero = default): Phase 0
		// is recomputed from them on resume, so any drift would silently
		// change the warm start — mismatches must be rejected.
		Accelerator:      opts.Accelerator.fingerprint(),
		Phase0Rank:       opts.Phase0Rank,
		SketchOversample: opts.SketchOversample,
	}
	return runstate.Open(opts.Checkpoint, meta, p.NumBlocks(), opts.Resume)
}

// finiteTol folds ±Inf tolerances (legal ways to disable convergence
// checks) to the finite extremes: JSON cannot carry non-finite numbers,
// and for fingerprinting purposes the fold is equivalent — no improvement
// can cross either bound.
func finiteTol(tol float64) float64 {
	if math.IsInf(tol, -1) {
		return -math.MaxFloat64
	}
	if math.IsInf(tol, 1) {
		return math.MaxFloat64
	}
	return tol
}

// finishRun records the completed Result in the checkpoint directory (when
// checkpointing) and returns res. Called by the Decompose front-ends after
// the final fit is in; once SaveResult succeeds, resuming the directory is
// a no-op that returns this Result.
func finishRun(rs *runstate.Run, ob *Observer, res *Result) (*Result, error) {
	defer emitRunDone(ob, res)
	if rs == nil {
		return res, nil
	}
	st := &runstate.ResultState{
		Fit:           res.Fit,
		Phase0NS:      int64(res.RunStats.Phase0Time),
		Accelerated:   res.RunStats.Accelerated,
		Phase1NS:      int64(res.RunStats.Phase1Time),
		Phase2NS:      int64(res.RunStats.Phase2Time),
		VirtualIters:  res.VirtualIters,
		Converged:     res.Converged,
		FitTrace:      res.FitTrace,
		Blocks:        res.RunStats.Blocks,
		Phase1Sweeps:  res.RunStats.Phase1Sweeps,
		Swaps:         res.RunStats.Swaps,
		SwapsPerIter:  res.RunStats.SwapsPerIter,
		BufferHits:    res.RunStats.BufferHits,
		BufferHitRate: res.RunStats.BufferHitRate,
		Evictions:     res.RunStats.Evictions,
		WriteBacks:    res.RunStats.WriteBacks,
		BytesRead:     res.RunStats.BytesRead,
		BytesWritten:  res.RunStats.BytesWritten,
		Retries:       res.RunStats.Retries,
		Factors:       res.Model.Factors,
	}
	if err := rs.SaveResult(st); err != nil {
		return nil, err
	}
	return res, nil
}

// resultFromState reconstructs the public Result of a completed run from
// its checkpoint (the no-op resume path).
func resultFromState(st *runstate.ResultState) *Result {
	return &Result{
		Model:        cpals.NewKTensor(st.Factors),
		Fit:          st.Fit,
		VirtualIters: st.VirtualIters,
		Converged:    st.Converged,
		FitTrace:     st.FitTrace,
		RunStats: RunStats{
			Phase0Time:    time.Duration(st.Phase0NS),
			Accelerated:   st.Accelerated,
			Phase1Time:    time.Duration(st.Phase1NS),
			Phase2Time:    time.Duration(st.Phase2NS),
			Blocks:        st.Blocks,
			Phase1Sweeps:  st.Phase1Sweeps,
			Swaps:         st.Swaps,
			SwapsPerIter:  st.SwapsPerIter,
			BufferHits:    st.BufferHits,
			BufferHitRate: st.BufferHitRate,
			Evictions:     st.Evictions,
			WriteBacks:    st.WriteBacks,
			BytesRead:     st.BytesRead,
			BytesWritten:  st.BytesWritten,
			Retries:       st.Retries,
		},
	}
}

// validateCheckpointOptions rejects option combinations the durability
// layer cannot honor.
func validateCheckpointOptions(opts Options) error {
	if opts.Resume && opts.Checkpoint == "" {
		return fmt.Errorf("twopcp: Resume requires Checkpoint to name the checkpoint directory")
	}
	return nil
}

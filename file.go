package twopcp

import (
	"fmt"
	"os"

	"twopcp/internal/tfile"
)

// DecomposeFile runs the full 2PCP pipeline on a tensor file, detecting
// the format from the file magic: dense .tpdn and sparse .tpsp inputs are
// loaded into memory, tiled .tptl inputs stream through DecomposeTiledFile
// fully out-of-core. It returns the result and the input's mode sizes.
// Both front-ends — the twopcp CLI and the twopcpd daemon — go through
// this one entry point, so a job submitted to the service decomposes
// bit-identically to the same file run locally.
func DecomposeFile(path string, opts Options) (*Result, []int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	magic := make([]byte, 4)
	if _, err := f.Read(magic); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("twopcp: read magic of %s: %w", path, err)
	}
	f.Close()
	switch string(magic) {
	case tfile.Magic:
		res, err := DecomposeTiledFile(path, opts)
		if err != nil {
			return nil, nil, err
		}
		dims := make([]int, len(res.Model.Factors))
		for m, fac := range res.Model.Factors {
			dims[m] = fac.Rows
		}
		return res, dims, nil
	case "TPDN":
		x, err := LoadDense(path)
		if err != nil {
			return nil, nil, err
		}
		res, err := Decompose(x, opts)
		return res, x.Dims, err
	case "TPSP":
		x, err := LoadCOO(path)
		if err != nil {
			return nil, nil, err
		}
		res, err := DecomposeSparse(x, opts)
		return res, x.Dims, err
	default:
		return nil, nil, fmt.Errorf("twopcp: unrecognized tensor magic %q in %s (want TPDN, TPSP or TPTL)", magic, path)
	}
}

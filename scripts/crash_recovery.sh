#!/usr/bin/env bash
# Crash-recovery smoke: generate a tiled tensor, start a checkpointed
# decomposition, SIGKILL it mid-Phase-2, resume it, and verify the resumed
# run's factors and fit trace are bit-for-bit identical to an uninterrupted
# run. Exercises the real binaries end to end — the same path a production
# operator would take after a node failure.
#
# Usage: scripts/crash_recovery.sh   (from the repo root; CI runs it as the
# crash-recovery job in .github/workflows/ci.yml)
#
# TWOPCP_CONSTRAINT=nonneg (or ridge, with TWOPCP_LAMBDA) reruns the whole
# scenario under a constrained solver: the kill/resume diff must still be
# bit-for-bit, and for nonneg the recovered factor CSVs must contain no
# negative entries. CI runs the default pass in the smoke job and a nonneg
# pass in the constraints job.
#
# TWOPCP_ACCELERATOR=tucker (or sketched) reruns it with Phase-0
# acceleration over a low-multilinear-rank input: the resumed run must
# still be bit-for-bit identical AND must report accelerated:true — a
# resume that lands mid-Phase-2 skips Phase 0 and restores its recorded
# outcome from the manifest. CI runs a tucker pass in the accel job.
#
# TWOPCP_FAULT_RATE=0.01 reruns the whole scenario on chaos-degraded
# storage: every twopcp invocation (reference, killed, resumed) reads the
# rate from the environment via the -fault-rate flag default and injects
# seeded transient faults into store and block reads. The script adds a
# retry budget so the faults heal, and the kill/resume diff must STILL be
# bit-for-bit — recovery correctness is independent of storage health.
# CI runs a faulted pass in the chaos job.
#
# TWOPCP_TRACE=1 additionally runs the killed and resumed runs with
# -trace into one shared file: because OpenTrace appends, the resumed
# run must EXTEND the pre-crash event stream (two run.start events, a
# checkpoint.resume marking the seam), and the combined trace must
# validate against the event schema via cmd/tracecheck. CI runs a traced
# pass in the obs job.
set -euo pipefail

constraint="${TWOPCP_CONSTRAINT:-none}"
lambda="${TWOPCP_LAMBDA:-0}"
accelerator="${TWOPCP_ACCELERATOR:-none}"
trace="${TWOPCP_TRACE:-0}"

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "== building binaries"
go build -o "$work/tensorgen" ./cmd/tensorgen
go build -o "$work/twopcp" ./cmd/twopcp
if [ "$trace" = 1 ]; then
  go build -o "$work/tracecheck" ./cmd/tracecheck
fi

echo "== generating tiled input"
if [ "$accelerator" = none ]; then
  "$work/tensorgen" -kind lowrank -dims 36x36x36 -rank 4 -noise 0.3 \
    -tiles 3x3x3 -seed 11 -out "$work/x.tptl"
else
  # The accelerated pass needs low-multilinear-rank structure, or Phase 0
  # falls back structurally and the scenario stops covering it.
  "$work/tensorgen" -kind lowmlrank -dims 36x36x36 -mlrank 4 -diag \
    -noise 1e-5 -tiles 3x3x3 -seed 11 -out "$work/x.tptl"
fi

# -tol=-1 disables convergence so both runs execute the full iteration
# budget; -checkpoint-steps 1 checkpoints after every schedule step so the
# kill always lands between checkpoints.
args=(-in "$work/x.tptl" -rank 4 -parts 3 -buffer 0.5 -iters 600 -tol=-1 -seed 11
  -constraint "$constraint" -lambda "$lambda" -accelerator "$accelerator")
fault_rate="${TWOPCP_FAULT_RATE:-0}"
if [ "$fault_rate" != 0 ]; then
  # The binary picks the rate up from $TWOPCP_FAULT_RATE itself; the script
  # only has to grant a retry budget so the injected faults heal.
  args+=(-retry 8)
fi
echo "== constraint: $constraint (lambda $lambda)   accelerator: $accelerator   fault rate: $fault_rate"

echo "== reference (uninterrupted) run"
"$work/twopcp" "${args[@]}" -out-prefix "$work/ref" -json "$work/ref.json" >/dev/null

echo "== checkpointed run, SIGKILLed mid-Phase-2"
ckpt="$work/ckpt"
# The killed and resumed runs share one trace file: append semantics must
# preserve the pre-crash event history across the crash.
trace_args=()
if [ "$trace" = 1 ]; then
  trace_args=(-trace "$work/run.jsonl")
fi
"$work/twopcp" "${args[@]}" "${trace_args[@]}" -checkpoint "$ckpt" -checkpoint-steps 1 >/dev/null &
pid=$!
# Wait for Phase 2 to start checkpointing, let it make some progress, then
# kill hard (no signal handler can run: this is the power-loss case).
for _ in $(seq 1 3000); do
  [ -f "$ckpt/phase2.ckpt" ] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.01
done
sleep 0.3
if ! kill -0 "$pid" 2>/dev/null; then
  echo "FAIL: run finished before it could be killed; enlarge the workload" >&2
  wait "$pid" || true
  exit 1
fi
kill -9 "$pid"
wait "$pid" 2>/dev/null || true

[ -f "$ckpt/phase2.ckpt" ] || { echo "FAIL: no Phase-2 checkpoint on disk after kill" >&2; exit 1; }
grep -q '"stage":"phase2"' "$ckpt/manifest.json" || {
  echo "FAIL: manifest is not mid-Phase-2 after the kill:" >&2
  cat "$ckpt/manifest.json" >&2
  exit 1
}
echo "   killed pid $pid with $(ls "$ckpt" | grep -c p1-block) block checkpoints + phase2.ckpt present"

echo "== resuming"
"$work/twopcp" "${args[@]}" "${trace_args[@]}" -resume "$ckpt" -out-prefix "$work/res" -json "$work/res.json" >/dev/null

echo "== diffing factors and fit trace against the uninterrupted run"
for m in 0 1 2; do
  cmp "$work/ref-mode$m.csv" "$work/res-mode$m.csv" || {
    echo "FAIL: factors differ on mode $m" >&2
    exit 1
  }
done
# Wall-clock fields legitimately differ, a resumed run reports fewer
# Phase-1 sweeps (checkpoint-restored blocks recompute nothing), and retry
# counts depend on which ops each attempt happened to issue under fault
# injection; every other field of run_stats (fit, trace, swaps, hit rate,
# store traffic, iteration counts) must match exactly.
if command -v jq >/dev/null 2>&1; then
  strip='del(.run_stats.phase0_ns, .run_stats.phase1_ns, .run_stats.phase2_ns, .run_stats.phase1_sweeps, .run_stats.retries)'
  diff <(jq -S "$strip" "$work/ref.json") \
       <(jq -S "$strip" "$work/res.json") || {
    echo "FAIL: result JSON differs between reference and resumed run" >&2
    exit 1
  }
else
  diff <(grep -v '_ns"\|phase1_sweeps\|"retries"' "$work/ref.json") \
       <(grep -v '_ns"\|phase1_sweeps\|"retries"' "$work/res.json") || {
    echo "FAIL: result JSON differs between reference and resumed run" >&2
    exit 1
  }
fi

if [ "$trace" = 1 ]; then
  echo "== validating the appended trace"
  # The resumed run must have appended to the killed run's trace, not
  # truncated it: two run.start events (pre-crash + resume), exactly one
  # checkpoint.resume marking the seam, one run.done (only the resumed
  # run finished), and every line schema-valid.
  "$work/tracecheck" "$work/run.jsonl" || {
    echo "FAIL: trace does not validate after the crash" >&2
    exit 1
  }
  starts=$(grep -c '"ev":"run.start"' "$work/run.jsonl" || true)
  resumes=$(grep -c '"ev":"checkpoint.resume"' "$work/run.jsonl" || true)
  dones=$(grep -c '"ev":"run.done"' "$work/run.jsonl" || true)
  if [ "$starts" -ne 2 ] || [ "$resumes" -ne 1 ] || [ "$dones" -ne 1 ]; then
    echo "FAIL: trace lifecycle events wrong: run.start=$starts (want 2)," \
         "checkpoint.resume=$resumes (want 1), run.done=$dones (want 1)" >&2
    exit 1
  fi
  echo "   trace OK: $starts run.start, $resumes checkpoint.resume, $dones run.done"
fi

if [ "$accelerator" != none ] && [ "$accelerator" != sketched ]; then
  echo "== checking the resumed run still reports the Phase-0 outcome"
  # The resume skips Phase 0 (it already ran before the kill); its recorded
  # outcome must survive in the manifest and surface in the result.
  grep -q '"accelerated": *true' "$work/res.json" || {
    echo "FAIL: resumed run lost the accelerated:true outcome" >&2
    exit 1
  }
fi

if [ "$constraint" = nonneg ]; then
  echo "== checking recovered factors are nonnegative"
  # A negative factor entry prints with a leading minus (at line start or
  # after a comma); exponents like 1e-05 never match these anchors.
  for m in 0 1 2; do
    if grep -q '^-\|,-' "$work/res-mode$m.csv"; then
      echo "FAIL: negative entry in recovered nonneg factor mode $m" >&2
      exit 1
    fi
  done
fi

echo "PASS: resumed run is bit-for-bit identical to the uninterrupted run"

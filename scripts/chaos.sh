#!/usr/bin/env bash
# Chaos smoke: run the same decomposition on clean storage and on storage
# with seeded transient faults injected into both phases (store reads and
# writes in Phase 2, block reads in Phase 1), and verify the retry layer
# makes faults INVISIBLE: factors and the full result JSON (minus retry
# counts and wall clock) must be bit-for-bit identical at every fault
# rate. Then verify the permanent-fault path: a poison block must surface
# as a quarantine error with the distinct exit code 4, leave a resumable
# checkpoint behind, and the resumed run (fault fixed) must again match
# the clean run exactly.
#
# Usage: scripts/chaos.sh   (from the repo root; CI runs it as the chaos
# job in .github/workflows/ci.yml)
#
# TWOPCP_FAULT_RATES overrides the swept rates (default "0.001 0.01").
set -euo pipefail

rates="${TWOPCP_FAULT_RATES:-0.001 0.01}"

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "== building binaries"
go build -o "$work/tensorgen" ./cmd/tensorgen
go build -o "$work/twopcp" ./cmd/twopcp
go build -o "$work/tracecheck" ./cmd/tracecheck

echo "== generating tiled input"
"$work/tensorgen" -kind lowrank -dims 30x30x30 -rank 3 -noise 0.3 \
  -tiles 3x3x3 -seed 11 -out "$work/x.tptl"

# -tol=-1 pins the iteration count so every run does identical work; the
# retry budget is deliberately generous — the contract under test is
# "healed faults change nothing", not "the budget is tight".
args=(-in "$work/x.tptl" -rank 3 -parts 3 -buffer 0.5 -iters 40 -tol=-1
  -seed 11 -retry 8)

echo "== reference run on clean storage"
"$work/twopcp" "${args[@]}" -out-prefix "$work/ref" -json "$work/ref.json" >/dev/null

# Wall-clock fields and the retry counter differ by construction; every
# other run_stats field (fit, swaps, hit rate, store traffic — which
# counts only SUCCESSFUL ops) must match the clean run exactly.
json_diff() {
  if command -v jq >/dev/null 2>&1; then
    strip='del(.run_stats.phase0_ns, .run_stats.phase1_ns, .run_stats.phase2_ns, .run_stats.retries)'
    diff <(jq -S "$strip" "$1") <(jq -S "$strip" "$2")
  else
    diff <(grep -v '_ns"\|"retries"' "$1") <(grep -v '_ns"\|"retries"' "$2")
  fi
}

for rate in $rates; do
  echo "== faulted run at rate $rate"
  "$work/twopcp" "${args[@]}" -fault-rate "$rate" -fault-seed 99 \
    -trace "$work/run-$rate.jsonl" \
    -out-prefix "$work/f$rate" -json "$work/f$rate.json" >/dev/null
  for m in 0 1 2; do
    cmp "$work/ref-mode$m.csv" "$work/f$rate-mode$m.csv" || {
      echo "FAIL: factors differ on mode $m at fault rate $rate" >&2
      exit 1
    }
  done
  json_diff "$work/ref.json" "$work/f$rate.json" || {
    echo "FAIL: result JSON differs at fault rate $rate" >&2
    exit 1
  }
  echo "== reconciling trace retry events with run_stats at rate $rate"
  "$work/tracecheck" -run-stats "$work/f$rate.json" "$work/run-$rate.jsonl" || {
    echo "FAIL: trace does not validate or retries do not reconcile at rate $rate" >&2
    exit 1
  }
done

# The highest swept rate must actually exercise the retry path, or the
# whole sweep silently degenerates into comparing clean runs.
high="${rates##* }"
retries=$(sed -n 's/.*"retries": *\([0-9][0-9]*\).*/\1/p' "$work/f$high.json" | head -1)
if [ -z "$retries" ] || [ "$retries" -eq 0 ]; then
  echo "FAIL: 0 retries at fault rate $high — injection not exercised" >&2
  exit 1
fi
echo "   rate $high absorbed $retries transient-fault retries, bit-identical output"

echo "== poison block: quarantine, exit code 4, resumable checkpoint"
ckpt="$work/ckpt"
rc=0
"$work/twopcp" "${args[@]}" -fault-poison-blocks 5 -checkpoint "$ckpt" \
  >/dev/null 2>"$work/poison.err" || rc=$?
if [ "$rc" -ne 4 ]; then
  echo "FAIL: poisoned run exit code = $rc, want 4 (quarantine)" >&2
  cat "$work/poison.err" >&2
  exit 1
fi
grep -qi quarantine "$work/poison.err" || {
  echo "FAIL: no quarantine notice on stderr:" >&2
  cat "$work/poison.err" >&2
  exit 1
}
[ -d "$ckpt" ] || { echo "FAIL: no checkpoint directory after quarantine" >&2; exit 1; }

echo "== resuming after the poison block is fixed"
"$work/twopcp" "${args[@]}" -resume "$ckpt" \
  -out-prefix "$work/res" -json "$work/res.json" >/dev/null
for m in 0 1 2; do
  cmp "$work/ref-mode$m.csv" "$work/res-mode$m.csv" || {
    echo "FAIL: factors differ on mode $m after quarantine resume" >&2
    exit 1
  }
done
if command -v jq >/dev/null 2>&1; then
  strip='del(.run_stats.phase0_ns, .run_stats.phase1_ns, .run_stats.phase2_ns, .run_stats.phase1_sweeps, .run_stats.retries)'
  diff <(jq -S "$strip" "$work/ref.json") <(jq -S "$strip" "$work/res.json") || {
    echo "FAIL: result JSON differs after quarantine resume" >&2
    exit 1
  }
else
  diff <(grep -v '_ns"\|phase1_sweeps\|"retries"' "$work/ref.json") \
       <(grep -v '_ns"\|phase1_sweeps\|"retries"' "$work/res.json") || {
    echo "FAIL: result JSON differs after quarantine resume" >&2
    exit 1
  }
fi

echo "PASS: faults at rates [$rates] healed bit-identically; quarantine resumed bit-identically"

#!/usr/bin/env bash
# Service smoke: run the decomposition daemon end to end through the real
# binaries — submit a job over HTTP, watch it run, SIGTERM the daemon
# mid-job (it must drain: checkpoint, exit 3), restart it over the same
# data directory (it must resume the job without client action), and
# verify the finished factors are bit-for-bit identical to a local CLI
# run of the same spec. This is the operational story docs/service.md
# tells, executed literally.
#
# Usage: scripts/service_smoke.sh   (from the repo root; CI runs it as
# the service job in .github/workflows/ci.yml)
set -euo pipefail

work="$(mktemp -d "${TMPDIR:-/tmp}/twopcp-service.XXXXXX")"
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "== build binaries"
go build -o "$work/twopcp" ./cmd/twopcp
go build -o "$work/twopcpd" ./cmd/twopcpd
go build -o "$work/tensorgen" ./cmd/tensorgen

port=7163
admin_port=7164
server="http://localhost:$port"
data="$work/data"

start_daemon() {
  "$work/twopcpd" -data "$data" -listen "localhost:$port" -admin "localhost:$admin_port" &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    curl -fs "$server/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$daemon_pid" 2>/dev/null || { echo "daemon died during startup" >&2; exit 1; }
    sleep 0.1
  done
  echo "daemon did not become healthy" >&2
  exit 1
}

echo "== generate input and local reference run"
"$work/tensorgen" -kind lowrank -dims 30x30x30 -rank 2 -noise 0 \
  -tiles 2x2x2 -seed 11 -out "$work/x.tptl"
# Same spec the job will carry: long enough (tol disabled) that the drain
# lands mid-run, checkpointing every schedule step.
common_flags=(-rank 3 -parts 3 -buffer 0.5 -iters 500 -tol=-1 -seed 11)
"$work/twopcp" -in "$work/x.tptl" "${common_flags[@]}" -out-prefix "$work/ref"

echo "== start daemon and submit"
start_daemon
job="$("$work/twopcp" submit -server "$server" -in "$work/x.tptl" \
  "${common_flags[@]}" -checkpoint-steps 1)"
echo "submitted $job"

echo "== wait for the job to start checkpointing, scrape /metrics"
ckpt="$data/$job/ckpt/phase2.ckpt"
for _ in $(seq 1 300); do
  [ -f "$ckpt" ] && break
  sleep 0.1
done
[ -f "$ckpt" ] || { echo "job never reached a Phase-2 checkpoint" >&2; exit 1; }
curl -fs "http://localhost:$admin_port/metrics" | tee "$work/prom.txt" | head -n 5
grep -q '^twopcp_jobs_running 1' "$work/prom.txt" \
  || { echo "/metrics does not show the running job" >&2; exit 1; }

echo "== SIGTERM the daemon mid-job (drain contract: checkpoint, exit 3)"
kill -TERM "$daemon_pid"
rc=0; wait "$daemon_pid" || rc=$?
daemon_pid=""
[ "$rc" -eq 3 ] || { echo "drained daemon exited $rc, want 3" >&2; exit 1; }
state="$(grep -o '"state": *"[a-z]*"' "$data/$job/job.json")"
echo "durable record after drain: $state"
case "$state" in
  *interrupted*|*running*|*queued*) ;; # all three auto-requeue on restart
  *) echo "unexpected post-drain state: $state" >&2; exit 1 ;;
esac

echo "== restart the daemon; the job must resume and finish on its own"
start_daemon
for _ in $(seq 1 600); do
  state="$("$work/twopcp" status -server "$server" "$job" | grep -o '"state": *"[a-z]*"' | head -n 1)"
  case "$state" in
    *done*) break ;;
    *failed*|*quarantined*|*canceled*) echo "job landed in $state" >&2; exit 1 ;;
  esac
  sleep 0.1
done
case "$state" in *done*) ;; *) echo "job never finished (last state: $state)" >&2; exit 1 ;; esac

echo "== download factors, diff against the local reference run"
for m in 0 1 2; do
  curl -fs "$server/v1/jobs/$job/factors/$m" -o "$work/svc-mode$m.csv"
  cmp "$work/svc-mode$m.csv" "$work/ref-mode$m.csv" \
    || { echo "factor mode $m differs from the local CLI run" >&2; exit 1; }
done

kill -TERM "$daemon_pid"; rc=0; wait "$daemon_pid" || rc=$?
daemon_pid=""
[ "$rc" -eq 3 ] || { echo "idle drain exited $rc, want 3" >&2; exit 1; }

echo "service smoke OK: drain exited 3, restart resumed, factors bit-identical"

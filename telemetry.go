package twopcp

import (
	"io"
	"time"

	"twopcp/internal/obs"
)

// Telemetry types, re-exported from the internal obs package so library
// users configure observability through the same single import. See the
// "Telemetry contract" section of the package documentation: telemetry
// observes a run but never influences it, so factors, FitTrace and swap
// counts are bit-identical with tracing on or off, and the trace's event
// multiset (minus wall-clock timestamps) is identical across worker
// counts and prefetch depths.
type (
	// Observer is the telemetry handle passed via Options.Observer. Any
	// subset of its sinks (Trace, Metrics, OnEvent) may be set; nil is
	// the fully disabled — and essentially free — default.
	Observer = obs.Observer
	// Recorder writes trace events as JSONL, safe for concurrent use.
	Recorder = obs.Recorder
	// Registry is a metrics registry of counters, gauges and histograms.
	Registry = obs.Registry
	// Event is one structured trace record.
	Event = obs.Event
	// Field is one typed key/value payload entry of an Event.
	Field = obs.Field
	// FanOut broadcasts an event stream to dynamically attached
	// subscribers — the bridge between the single synchronous
	// Observer.OnEvent callback and the many listeners a long-running
	// service needs (cmd/twopcpd streams one SSE feed per watching client
	// off it). Install FanOut.Publish as the OnEvent sink; Subscribe
	// attaches a listener. Publish never blocks the run: subscribers that
	// fall behind drop events (counted per subscriber) instead of
	// queueing without bound, preserving the contract that telemetry
	// observes a run but never influences it.
	FanOut = obs.FanOut
)

// NewFanOut returns an empty event fan-out with no subscribers.
func NewFanOut() *FanOut { return obs.NewFanOut() }

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewRecorder returns a trace recorder writing JSONL to w. The caller
// owns w; Close flushes but does not close it.
func NewRecorder(w io.Writer) *Recorder { return obs.NewRecorder(w) }

// OpenTrace opens (or creates) a trace file in append mode — a resumed
// run pointed at the same file extends the recorded event stream rather
// than truncating the pre-crash history.
func OpenTrace(path string) (*Recorder, error) { return obs.OpenTrace(path) }

// ValidateTraceLine checks one JSONL trace line against the event
// schema: known event name, numeric timestamp, all required fields
// present with their declared types, no undeclared fields.
func ValidateTraceLine(line []byte) error { return obs.ValidateLine(line) }

// RunStats aggregates a run's operational statistics: wall-clock split,
// Phase-1 work, Phase-2 buffer behavior and store traffic. It reports
// what the run did, never what it computed — the numerical outputs stay
// in Result proper. The JSON form is the "run_stats" object of the CLI's
// -json output; durations marshal as integer nanoseconds.
type RunStats struct {
	// Phase0Time, Phase1Time and Phase2Time split the wall clock
	// (Phase0Time is zero without an accelerator). Wall time is the one
	// field that legitimately differs between otherwise identical runs.
	Phase0Time time.Duration `json:"phase0_ns,omitempty"`
	Phase1Time time.Duration `json:"phase1_ns"`
	Phase2Time time.Duration `json:"phase2_ns"`
	// Accelerated reports whether Phase 0 actually produced a warm start
	// or sampled solver (false without an accelerator or when it fell
	// back to brute force).
	Accelerated bool `json:"accelerated,omitempty"`
	// Blocks is the number of grid blocks Phase 1 decomposed.
	Blocks int `json:"blocks"`
	// Phase1Sweeps totals the per-block ALS sweeps actually computed;
	// blocks restored from a checkpoint contribute 0 (nothing was
	// recomputed), so a resumed run reports fewer sweeps than a fresh
	// one while producing bit-identical factors.
	Phase1Sweeps int `json:"phase1_sweeps"`
	// Swaps is the number of data units fetched into the Phase-2 buffer
	// (the paper's I/O metric); SwapsPerIter normalizes by virtual
	// iterations. Both are bit-deterministic across worker counts and
	// prefetch depths.
	Swaps        int64   `json:"swaps"`
	SwapsPerIter float64 `json:"swaps_per_iter"`
	// BufferHits counts acquisitions served without store I/O;
	// BufferHitRate = BufferHits / (BufferHits + Swaps).
	BufferHits    int64   `json:"buffer_hits"`
	BufferHitRate float64 `json:"buffer_hit_rate"`
	// Evictions and WriteBacks count units dropped from the buffer and
	// dirty units written back to the store.
	Evictions  int64 `json:"evictions"`
	WriteBacks int64 `json:"write_backs"`
	// BytesRead and BytesWritten count store traffic during Phase-2
	// refinement (setup seeding is excluded). BytesRead may include a
	// few extra reads at PrefetchDepth > 0, from prefetches issued for
	// steps that never ran; everything else here is depth-invariant.
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	// Retries counts transient-fault retries absorbed by the resilience
	// layer across both phases (0 when Options.Retry is disabled or no
	// faults occurred). Unlike every counter above it is NOT part of the
	// determinism contract — faults are environmental — but it reconciles
	// exactly with the store.retry events in a single-process trace
	// (cmd/tracecheck -run-stats checks this).
	Retries int64 `json:"retries"`
}

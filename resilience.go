package twopcp

import (
	"errors"

	"twopcp/internal/blockstore"
	"twopcp/internal/phase1"
)

// Fault-tolerance surface, re-exported from the internal packages. See the
// "Fault tolerance" section of the package documentation for the contract:
// retries never change what the run computes, quarantine is typed and
// resumable, and a graceful drain leaves a valid checkpoint behind.
type (
	// RetryPolicy configures transient-fault retries and per-operation
	// deadlines for both phases (Options.Retry). The zero value disables
	// the resilience layer entirely — bit-for-bit the historical behavior.
	RetryPolicy = blockstore.RetryPolicy
	// QuarantineError reports Phase-1 blocks that exhausted the retry
	// budget on a permanent fault. The run's other blocks completed and
	// were checkpointed (when checkpointing), so fixing the fault and
	// resuming recomputes only the quarantined blocks. Detect it with
	// errors.As; the listed block ids are sorted ascending.
	QuarantineError = phase1.QuarantineError
)

// ErrInterrupted is returned (wrapped) when a run stops early because
// Options.Stop was closed: in-flight work was finished, and — when
// checkpointing — a valid checkpoint was written first, so a Resume
// continues bit-exactly where the drain left off. Detect it with
// errors.Is.
var ErrInterrupted = errors.New("twopcp: run interrupted")

// Chaos injects seeded faults into a run for resilience testing (the
// chaos harness in scripts/chaos.sh drives it through the CLI's -fault-*
// flags). All injection is deterministic under Seed, so a faulty run that
// heals through retries produces bit-identical factors and FitTrace to a
// fault-free run. The zero value injects nothing.
type Chaos struct {
	// ReadRate / WriteRate are the per-operation probabilities of an
	// injected transient fault on Phase-2 store reads / writes.
	ReadRate  float64
	WriteRate float64
	// BlockRate is the per-read probability of an injected transient
	// fault on Phase-1 block reads.
	BlockRate float64
	// PoisonBlocks lists Phase-1 linear block ids that fail permanently
	// on every read (they exhaust any retry budget and land in
	// quarantine).
	PoisonBlocks []int
	// Seed seeds the injection RNGs (independent of Options.Seed so the
	// fault pattern can vary while the run's numerics stay fixed).
	Seed int64
}

// enabled reports whether any fault injection is configured.
func (c Chaos) enabled() bool {
	return c.ReadRate > 0 || c.WriteRate > 0 || c.BlockRate > 0 || len(c.PoisonBlocks) > 0
}

// storeFaults reports whether Phase-2 store faults are configured.
func (c Chaos) storeFaults() bool { return c.ReadRate > 0 || c.WriteRate > 0 }

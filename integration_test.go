package twopcp_test

import (
	"math"
	"math/rand"
	"testing"

	"twopcp"
	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/cpals"
	"twopcp/internal/datasets"
	"twopcp/internal/grid"
	"twopcp/internal/mapreduce"
	"twopcp/internal/mat"
	"twopcp/internal/phase1"
	"twopcp/internal/refine"
	"twopcp/internal/schedule"
	"twopcp/internal/tensor"
)

// These tests exercise cross-module pipelines end to end: MapReduce
// Phase 1 feeding Phase 2, fully file-backed out-of-core runs, higher-mode
// tensors, and the paper's dataset workloads through the public API.

func TestIntegrationMapReducePhase1IntoRefinement(t *testing.T) {
	// Phase 1 on the in-process MapReduce engine (the paper's §IV
	// operators), stitched by Phase 2 — the full distributed pipeline.
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandomCOO(rng, 0.4, 12, 12, 12)
	p := grid.UniformCube(3, 12, 2)
	opts := phase1.Options{Rank: 3, MaxIters: 25, Seed: 9}

	p1, counters, err := phase1.RunMapReduce(x, p, opts, mapreduce.Config{NumReducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if counters.ShuffleBytes == 0 {
		t.Fatal("no shuffle traffic recorded")
	}
	eng, err := refine.New(refine.Config{
		Phase1: p1, Store: blockstore.NewMemStore(),
		Schedule: schedule.HilbertOrder, Policy: buffer.Forward,
		BufferFraction: 0.5, MaxVirtualIters: 40, Tol: 1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	mrFit := cpals.NewKTensor(res.Factors).FitSparse(x)

	// The worker-pool Phase 1 path must land on the same result.
	src, err := phase1.NewCOOSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	p1Pool, err := phase1.Run(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	engPool, err := refine.New(refine.Config{
		Phase1: p1Pool, Store: blockstore.NewMemStore(),
		Schedule: schedule.HilbertOrder, Policy: buffer.Forward,
		BufferFraction: 0.5, MaxVirtualIters: 40, Tol: 1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	resPool, err := engPool.Run()
	if err != nil {
		t.Fatal(err)
	}
	poolFit := cpals.NewKTensor(resPool.Factors).FitSparse(x)
	if math.Abs(mrFit-poolFit) > 1e-9 {
		t.Fatalf("MapReduce pipeline fit %g != worker-pool fit %g", mrFit, poolFit)
	}
}

func TestIntegrationFullyOutOfCore(t *testing.T) {
	// Everything on disk: tensor chunks read from a ChunkStore in Phase 1,
	// data units on a FileStore in Phase 2.
	rng := rand.New(rand.NewSource(2))
	truth := make([]*mat.Matrix, 3)
	for m := range truth {
		truth[m] = mat.Random(10, 2, rng)
	}
	x := cpals.NewKTensor(truth).Full()
	p := grid.UniformCube(3, 10, 2)

	chunks, err := blockstore.NewChunkStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := phase1.PartitionToChunks(x, p, chunks); err != nil {
		t.Fatal(err)
	}
	p1, err := phase1.Run(&phase1.ChunkSource{Store: chunks, P: p},
		phase1.Options{Rank: 2, MaxIters: 100, Tol: 1e-8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	units, err := blockstore.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := refine.New(refine.Config{
		Phase1: p1, Store: units,
		Schedule: schedule.ZOrder, Policy: buffer.Forward,
		BufferFraction: 1.0 / 3, MaxVirtualIters: 60, Tol: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	fit := cpals.NewKTensor(res.Factors).Fit(x)
	if fit < 0.97 {
		t.Fatalf("out-of-core fit = %g", fit)
	}
	if res.BufferStats.Fetches == 0 || res.StoreStats.BytesRead == 0 {
		t.Fatal("no disk traffic recorded for an out-of-core run")
	}
}

func TestIntegrationFourModeTensor(t *testing.T) {
	// The system is N-mode generic; verify a 4-mode pipeline end to end.
	rng := rand.New(rand.NewSource(3))
	truth := make([]*twopcp.Matrix, 4)
	dims := []int{8, 6, 6, 4}
	for m := range truth {
		truth[m] = mat.Random(dims[m], 2, rng)
	}
	x := twopcp.NewKTensor(truth).Full()
	res, err := twopcp.Decompose(x, twopcp.Options{
		Rank: 2, Partitions: []int{2, 2, 2, 2},
		Schedule: twopcp.HilbertOrder, Replacement: twopcp.Forward,
		BufferFraction: 0.5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.95 {
		t.Fatalf("4-mode fit = %g", res.Fit)
	}
	if res.Model.NModes() != 4 {
		t.Fatalf("modes = %d", res.Model.NModes())
	}
}

func TestIntegrationHighModeZOrder(t *testing.T) {
	// The paper argues Z-order stays practical when the mode count grows
	// (Hilbert mapping gets expensive); check a 6-mode pipeline under ZO.
	rng := rand.New(rand.NewSource(4))
	dims := []int{4, 4, 4, 4, 4, 4}
	truth := make([]*twopcp.Matrix, 6)
	for m := range truth {
		truth[m] = mat.Random(dims[m], 1, rng)
	}
	x := twopcp.NewKTensor(truth).Full()
	res, err := twopcp.Decompose(x, twopcp.Options{
		Rank: 1, Partitions: []int{2},
		Schedule: twopcp.ZOrder, Replacement: twopcp.Forward,
		BufferFraction: 0.5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.9 {
		t.Fatalf("6-mode fit = %g", res.Fit)
	}
}

func TestIntegrationPaperDatasetsThroughPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset pipelines are slow")
	}
	rng := rand.New(rand.NewSource(5))
	// Sparse rating data.
	epin := datasets.Epinions(rng)
	sres, err := twopcp.DecomposeSparse(epin, twopcp.Options{
		Rank: 4, Partitions: []int{2}, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Fit < -1 || sres.Fit > 1 {
		t.Fatalf("Epinions fit = %g", sres.Fit)
	}
	// Dense image data.
	face := datasets.Face(rng, 20)
	dres, err := twopcp.Decompose(face, twopcp.Options{
		Rank: 6, Partitions: []int{2}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Fit < 0.8 {
		t.Fatalf("Face fit = %g (dense low-rank data should fit well)", dres.Fit)
	}
}

func TestIntegrationSwapInvariantAcrossData(t *testing.T) {
	// Paper §VIII-C.1: swap counts depend only on the pattern and buffer
	// fraction, not the data. Run the same configuration on two different
	// tensors and require identical swap counts.
	swapsFor := func(seed int64) (int64, float64) {
		rng := rand.New(rand.NewSource(seed))
		x := twopcp.RandomDense(rng, 16, 16, 16)
		res, err := twopcp.Decompose(x, twopcp.Options{
			Rank: 2, Partitions: []int{4},
			Schedule: twopcp.ZOrder, Replacement: twopcp.LRU,
			BufferFraction: 1.0 / 3,
			MaxIters:       12, Tol: math.Inf(-1),
			Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.RunStats.Swaps, res.RunStats.SwapsPerIter
	}
	s1, r1 := swapsFor(100)
	s2, r2 := swapsFor(200)
	if s1 != s2 || r1 != r2 {
		t.Fatalf("swap counts vary with data: %d/%g vs %d/%g", s1, r1, s2, r2)
	}
}

package twopcp_test

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"twopcp"
	"twopcp/internal/runstate"
)

func resumeOpts(dir string) twopcp.Options {
	return twopcp.Options{
		Rank:           3,
		Partitions:     []int{2, 2, 2},
		Schedule:       twopcp.HilbertOrder,
		Replacement:    twopcp.Forward,
		BufferFraction: 0.5,
		MaxIters:       8,
		Tol:            1e-6,
		Seed:           9,
		Checkpoint:     dir,
	}
}

func sameResult(t *testing.T, name string, got, want *twopcp.Result) {
	t.Helper()
	if got.Fit != want.Fit {
		t.Fatalf("%s: fit %v, want %v", name, got.Fit, want.Fit)
	}
	if got.RunStats.Swaps != want.RunStats.Swaps || got.VirtualIters != want.VirtualIters || got.Converged != want.Converged {
		t.Fatalf("%s: swaps/iters/converged = %d/%d/%v, want %d/%d/%v", name,
			got.RunStats.Swaps, got.VirtualIters, got.Converged, want.RunStats.Swaps, want.VirtualIters, want.Converged)
	}
	if len(got.FitTrace) != len(want.FitTrace) {
		t.Fatalf("%s: trace length %d, want %d", name, len(got.FitTrace), len(want.FitTrace))
	}
	for i := range want.FitTrace {
		if got.FitTrace[i] != want.FitTrace[i] {
			t.Fatalf("%s: trace[%d] = %v, want %v", name, i, got.FitTrace[i], want.FitTrace[i])
		}
	}
	for m := range want.Model.Factors {
		g, w := got.Model.Factors[m], want.Model.Factors[m]
		for i := range w.Data {
			if g.Data[i] != w.Data[i] {
				t.Fatalf("%s: factor %d differs at flat index %d", name, m, i)
			}
		}
	}
}

// TestDecomposeWithCheckpointMatchesPlain verifies the overhead-only
// contract: checkpointing changes no result field that the determinism
// contract covers, and resuming the completed run is a no-op that returns
// the recorded Result.
func TestDecomposeWithCheckpointMatchesPlain(t *testing.T) {
	x := twopcp.RandomDense(rand.New(rand.NewSource(4)), 16, 16, 16)

	plainOpts := resumeOpts("")
	plainOpts.Checkpoint = ""
	plain, err := twopcp.Decompose(x, plainOpts)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "ckpt")
	ckpt, err := twopcp.Decompose(x, resumeOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "checkpointed", ckpt, plain)

	// Resume after completion: a no-op returning the final Result.
	reOpts := resumeOpts(dir)
	reOpts.Resume = true
	resumed, err := twopcp.Decompose(x, reOpts)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "noop-resume", resumed, plain)
}

// TestResumeEdgeCases covers the rejection paths: missing manifest,
// mismatched options/seed, re-running a fresh run over an existing
// manifest, and Resume without a Checkpoint directory.
func TestResumeEdgeCases(t *testing.T) {
	x := twopcp.RandomDense(rand.New(rand.NewSource(4)), 16, 16, 16)

	t.Run("resume-without-checkpoint-dir", func(t *testing.T) {
		opts := resumeOpts("")
		opts.Checkpoint = ""
		opts.Resume = true
		if _, err := twopcp.Decompose(x, opts); err == nil {
			t.Fatal("Resume without Checkpoint accepted")
		}
	})

	t.Run("resume-without-manifest", func(t *testing.T) {
		opts := resumeOpts(filepath.Join(t.TempDir(), "empty"))
		opts.Resume = true
		if _, err := twopcp.Decompose(x, opts); !errors.Is(err, runstate.ErrNoManifest) {
			t.Fatalf("got %v, want ErrNoManifest", err)
		}
	})

	dir := filepath.Join(t.TempDir(), "ckpt")
	if _, err := twopcp.Decompose(x, resumeOpts(dir)); err != nil {
		t.Fatal(err)
	}

	t.Run("fresh-run-over-existing-manifest", func(t *testing.T) {
		if _, err := twopcp.Decompose(x, resumeOpts(dir)); !errors.Is(err, runstate.ErrExists) {
			t.Fatalf("got %v, want ErrExists", err)
		}
	})

	t.Run("mismatched-seed", func(t *testing.T) {
		opts := resumeOpts(dir)
		opts.Resume = true
		opts.Seed = 10
		if _, err := twopcp.Decompose(x, opts); !errors.Is(err, runstate.ErrMismatch) {
			t.Fatalf("got %v, want ErrMismatch", err)
		}
	})

	t.Run("mismatched-rank", func(t *testing.T) {
		opts := resumeOpts(dir)
		opts.Resume = true
		opts.Rank = 4
		if _, err := twopcp.Decompose(x, opts); !errors.Is(err, runstate.ErrMismatch) {
			t.Fatalf("got %v, want ErrMismatch", err)
		}
	})

	t.Run("mismatched-schedule", func(t *testing.T) {
		opts := resumeOpts(dir)
		opts.Resume = true
		opts.Schedule = twopcp.ZOrder
		if _, err := twopcp.Decompose(x, opts); !errors.Is(err, runstate.ErrMismatch) {
			t.Fatalf("got %v, want ErrMismatch", err)
		}
	})

	t.Run("infinite-tolerances-fingerprint", func(t *testing.T) {
		// ±Inf tolerances are legal (they disable convergence checks) and
		// must fold to finite fingerprint values instead of failing the
		// manifest's JSON encoding.
		dir := filepath.Join(t.TempDir(), "ckpt")
		opts := resumeOpts(dir)
		opts.Tol = math.Inf(-1)
		opts.Phase1Tol = math.Inf(-1)
		opts.MaxIters = 3
		if _, err := twopcp.Decompose(x, opts); err != nil {
			t.Fatalf("checkpointed run with -Inf tolerances: %v", err)
		}
		opts.Resume = true
		if _, err := twopcp.Decompose(x, opts); err != nil {
			t.Fatalf("resume with -Inf tolerances: %v", err)
		}
	})

	t.Run("read-only-checkpoint-dir", func(t *testing.T) {
		base := t.TempDir()
		file := filepath.Join(base, "occupied")
		if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		opts := resumeOpts(filepath.Join(file, "nested"))
		if _, err := twopcp.Decompose(x, opts); err == nil {
			t.Fatal("checkpoint dir under a regular file accepted")
		}
		if os.Geteuid() != 0 {
			ro := filepath.Join(base, "ro")
			if err := os.Mkdir(ro, 0o555); err != nil {
				t.Fatal(err)
			}
			opts.Checkpoint = filepath.Join(ro, "ckpt")
			if _, err := twopcp.Decompose(x, opts); err == nil {
				t.Fatal("checkpoint dir under a read-only directory accepted")
			}
		}
	})
}

// TestConstrainedCheckpointResume covers the solver identity in the
// durability layer: checkpointing a constrained run changes nothing
// (bit-for-bit vs plain), a completed constrained run no-op resumes, and a
// resume with a different constraint — or a different ridge weight — is
// rejected as a fingerprint mismatch.
func TestConstrainedCheckpointResume(t *testing.T) {
	x := twopcp.RandomDense(rand.New(rand.NewSource(4)), 16, 16, 16)
	modes := []struct {
		name       string
		constraint twopcp.Constraint
		lambda     float64
	}{
		{"nonneg", twopcp.ConstraintNonneg, 0},
		{"ridge", twopcp.ConstraintRidge, 0.02},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			withConstraint := func(dir string) twopcp.Options {
				opts := resumeOpts(dir)
				opts.Constraint = mode.constraint
				opts.Lambda = mode.lambda
				return opts
			}
			plainOpts := withConstraint("")
			plainOpts.Checkpoint = ""
			plain, err := twopcp.Decompose(x, plainOpts)
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(t.TempDir(), "ckpt")
			ckpt, err := twopcp.Decompose(x, withConstraint(dir))
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "constrained-checkpointed", ckpt, plain)

			reOpts := withConstraint(dir)
			reOpts.Resume = true
			resumed, err := twopcp.Decompose(x, reOpts)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "constrained-noop-resume", resumed, plain)

			// Mismatched solver identity is rejected.
			for _, bad := range []struct {
				constraint twopcp.Constraint
				lambda     float64
			}{
				{twopcp.ConstraintNone, 0},
				{twopcp.ConstraintRidge, 0.5},
				{twopcp.ConstraintNonneg, 0},
			} {
				if bad.constraint == mode.constraint && bad.lambda == mode.lambda {
					continue
				}
				badOpts := withConstraint(dir)
				badOpts.Resume = true
				badOpts.Constraint = bad.constraint
				badOpts.Lambda = bad.lambda
				if _, err := twopcp.Decompose(x, badOpts); !errors.Is(err, runstate.ErrMismatch) {
					t.Fatalf("resume with %v/%g over a %s checkpoint: got %v, want ErrMismatch",
						bad.constraint, bad.lambda, mode.name, err)
				}
			}
		})
	}
}

// TestTiledCheckpointResume exercises the checkpoint plumbing of the
// out-of-core front-end: DecomposeTiledFile with a checkpoint matches the
// plain run, and a completed tiled run no-op resumes.
func TestTiledCheckpointResume(t *testing.T) {
	x := twopcp.RandomDense(rand.New(rand.NewSource(4)), 16, 14, 12)
	path := filepath.Join(t.TempDir(), "x.tptl")
	if err := twopcp.SaveTiled(path, x, []int{3, 2, 2}); err != nil {
		t.Fatal(err)
	}

	plainOpts := resumeOpts("")
	plainOpts.Checkpoint = ""
	plain, err := twopcp.DecomposeTiledFile(path, plainOpts)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "ckpt")
	ckpt, err := twopcp.DecomposeTiledFile(path, resumeOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "tiled-checkpointed", ckpt, plain)

	reOpts := resumeOpts(dir)
	reOpts.Resume = true
	resumed, err := twopcp.DecomposeTiledFile(path, reOpts)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "tiled-noop-resume", resumed, plain)
}

// TestSparseCheckpointResume does the same for the sparse front-end.
func TestSparseCheckpointResume(t *testing.T) {
	x := twopcp.RandomCOO(rand.New(rand.NewSource(6)), 0.2, 14, 12, 10)

	plainOpts := resumeOpts("")
	plainOpts.Checkpoint = ""
	plain, err := twopcp.DecomposeSparse(x, plainOpts)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "ckpt")
	ckpt, err := twopcp.DecomposeSparse(x, resumeOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "sparse-checkpointed", ckpt, plain)

	reOpts := resumeOpts(dir)
	reOpts.Resume = true
	resumed, err := twopcp.DecomposeSparse(x, reOpts)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "sparse-noop-resume", resumed, plain)
}

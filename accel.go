package twopcp

import (
	"fmt"

	"twopcp/internal/cpals"
	"twopcp/internal/obs"
	"twopcp/internal/phase1"
	"twopcp/internal/sketch"
)

// validateAccelOptions rejects accelerator option combinations up front,
// mirroring the constraint/Lambda validation: the tuning knobs are only
// meaningful when an accelerator is selected.
func validateAccelOptions(opts Options) error {
	switch opts.Accelerator {
	case AccelNone:
		if opts.Phase0Rank != 0 {
			return fmt.Errorf("twopcp: Phase0Rank %d is only meaningful with an accelerator", opts.Phase0Rank)
		}
		if opts.SketchOversample != 0 {
			return fmt.Errorf("twopcp: SketchOversample %d is only meaningful with an accelerator", opts.SketchOversample)
		}
	case AccelTucker, AccelSketched:
		if opts.Phase0Rank < 0 {
			return fmt.Errorf("twopcp: Phase0Rank %d", opts.Phase0Rank)
		}
		if opts.SketchOversample < 0 {
			return fmt.Errorf("twopcp: SketchOversample %d", opts.SketchOversample)
		}
	default:
		return fmt.Errorf("twopcp: unknown accelerator %d", int(opts.Accelerator))
	}
	return nil
}

// warmPhase1MaxIters is the default per-block sweep budget when a Tucker
// warm start is installed and the caller left Phase1MaxIters at its
// default: the core solve already converged in the compressed space, so
// the block pass only adapts the expanded factors locally.
const warmPhase1MaxIters = 3

// phase0Rank resolves the per-mode Tucker basis rank: Phase0Rank when
// set, else the CP rank.
func phase0Rank(opts Options) int {
	if opts.Phase0Rank > 0 {
		return opts.Phase0Rank
	}
	return opts.Rank
}

// runPhase0 applies the configured accelerator ahead of Phase 1: for
// AccelTucker it computes the compress-then-refine warm start (possibly
// falling back to brute force) and installs it as p1opts.Init; for
// AccelSketched it wraps the Phase-1 row solver with leverage-score
// sampling. It mutates p1opts in place and reports whether a warm start
// or sampled solver was actually installed.
//
// Phase 0 is deterministic given the options (seeded sketches, serial
// block streaming), so a resumed run recomputes bit-identical warm
// starts — no Phase-0 state is checkpointed. Callers skip it entirely
// once the manifest has advanced past Phase 1 (the warm start can no
// longer influence anything).
func runPhase0(src phase1.Source, opts Options, solver cpals.Solver, p1opts *phase1.Options, ob *obs.Observer) (accelerated bool, err error) {
	switch opts.Accelerator {
	case AccelNone:
		return false, nil
	case AccelSketched:
		p1opts.Solver = cpals.Sketched{Inner: solver, Seed: opts.Seed}
		if ob.Tracing() {
			ob.Emit("phase0.sketch",
				obs.Str("accelerator", "sketched"), obs.Bool("active", true))
		}
		return true, nil
	case AccelTucker:
		res, err := sketch.TuckerWarmStart(src, sketchOptions(opts, solver))
		if err != nil {
			return false, err
		}
		if res.Fallback {
			if ob.Tracing() {
				ob.Emit("phase0.sketch",
					obs.Str("accelerator", "tucker"), obs.Bool("active", false),
					obs.Str("reason", res.Reason))
			}
			return false, nil
		}
		if ob.Tracing() {
			ob.Emit("phase0.sketch",
				obs.Str("accelerator", "tucker"), obs.Bool("active", true),
				obs.Str("core_dims", dimsLabel(res.CoreDims)),
				obs.F64("core_fit", res.CoreFit),
				obs.Int("core_iters", res.CoreIters))
		}
		p1opts.Init = res.Init
		// The compress-then-refine contract: the core solve already did
		// the slow convergence work, so the standard Phase-1 pass is a
		// short polish from the warm start (Phase 2 then refines
		// globally as usual). An explicit Phase1MaxIters overrides the
		// short default — the derivation depends only on the options, so
		// resumed runs reproduce it exactly.
		if opts.Phase1MaxIters == 0 {
			p1opts.MaxIters = warmPhase1MaxIters
		}
		return true, nil
	}
	return false, fmt.Errorf("twopcp: unknown accelerator %d", int(opts.Accelerator))
}

// sketchOptions maps the public accelerator knobs to the sketch layer.
func sketchOptions(opts Options, solver cpals.Solver) sketch.Options {
	return sketch.Options{
		Rank:       phase0Rank(opts),
		Oversample: opts.SketchOversample,
		CPRank:     opts.Rank,
		MaxIters:   corePhaseIters(opts),
		Tol:        opts.Phase1Tol,
		Seed:       opts.Seed,
		Solver:     solver,
		Nonneg:     opts.Constraint == ConstraintNonneg,
	}
}

// corePhaseIters bounds the core CP-ALS sweeps: the core is tiny, so it
// can afford more sweeps than a per-block ALS, but it must stay bounded
// by the caller's intent when Phase1MaxIters is explicit.
func corePhaseIters(opts Options) int {
	if opts.Phase1MaxIters > 0 {
		return opts.Phase1MaxIters
	}
	return 100
}

// WarmStartFit is a diagnostic hook for tests and the experiment CLI: it
// runs Phase 0 alone over a dense tensor with the given options and
// returns the expanded warm-start model (nil when Phase 0 fell back).
func WarmStartFit(x *Dense, opts Options) (*KTensor, bool, error) {
	if err := validateAccelOptions(opts); err != nil {
		return nil, false, err
	}
	if opts.Accelerator != AccelTucker {
		return nil, false, fmt.Errorf("twopcp: WarmStartFit requires AccelTucker, got %s", opts.Accelerator)
	}
	p, err := patternFor(x.Dims, opts)
	if err != nil {
		return nil, false, err
	}
	src, err := phase1.NewDenseSource(x, p)
	if err != nil {
		return nil, false, err
	}
	solver, err := opts.Constraint.solver(opts.Lambda)
	if err != nil {
		return nil, false, err
	}
	res, err := sketch.TuckerWarmStart(src, sketchOptions(opts, solver))
	if err != nil {
		return nil, false, err
	}
	if res.Fallback {
		return nil, false, nil
	}
	return cpals.NewKTensor(res.Init), true, nil
}

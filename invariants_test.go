package twopcp_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"twopcp"
)

// Root-level property suite: the solver contracts hold through the public
// two-phase pipeline, on every input front-end, at every parallelism
// setting. (The per-sweep numerical invariants — fit oracle, Gram
// conditioning, 200+ randomized cases per solver — live next to the solver
// in internal/cpals/invariants_test.go; this file asserts what only the
// full pipeline can: front-end parity, worker/prefetch invariance and the
// Phase-2 surrogate-fit trajectory.)

// constraintCases enumerates the three solver modes with their trace
// tolerances (ridge trades plain fit for the regularized objective, so its
// monotonicity allowance is λ-sized).
func constraintCases() []struct {
	name       string
	constraint twopcp.Constraint
	lambda     float64
	traceTol   float64
} {
	return []struct {
		name       string
		constraint twopcp.Constraint
		lambda     float64
		traceTol   float64
	}{
		{"ls", twopcp.ConstraintNone, 0, 1e-7},
		{"ridge", twopcp.ConstraintRidge, 0.01, 0.011},
		{"nonneg", twopcp.ConstraintNonneg, 0, 1e-7},
	}
}

func baseOpts(c twopcp.Constraint, lambda float64) twopcp.Options {
	return twopcp.Options{
		Rank:           3,
		Partitions:     []int{2},
		BufferFraction: 0.5,
		MaxIters:       8,
		Tol:            1e-9,
		Seed:           21,
		Constraint:     c,
		Lambda:         lambda,
	}
}

func assertTrace(t *testing.T, name string, res *twopcp.Result, traceTol float64) {
	t.Helper()
	if math.IsNaN(res.Fit) || res.Fit < -1e-9 || res.Fit > 1+1e-9 {
		t.Fatalf("%s: fit %v outside [0,1]", name, res.Fit)
	}
	for i, f := range res.FitTrace {
		if math.IsNaN(f) || f > 1+1e-9 {
			t.Fatalf("%s: trace[%d] = %v above 1", name, i, f)
		}
		if i > 0 && f < res.FitTrace[i-1]-traceTol {
			t.Fatalf("%s: surrogate fit decreases at %d: %v -> %v", name, i, res.FitTrace[i-1], f)
		}
	}
}

func assertNonnegModel(t *testing.T, name string, res *twopcp.Result) {
	t.Helper()
	for m, a := range res.Model.Factors {
		for j, v := range a.Data {
			if v < 0 {
				t.Fatalf("%s: factor %d entry %d is %g", name, m, j, v)
			}
		}
	}
}

func assertSameRun(t *testing.T, name string, got, want *twopcp.Result) {
	t.Helper()
	if got.Fit != want.Fit || got.VirtualIters != want.VirtualIters || got.RunStats.Swaps != want.RunStats.Swaps {
		t.Fatalf("%s: fit/iters/swaps %v/%d/%d, want %v/%d/%d",
			name, got.Fit, got.VirtualIters, got.RunStats.Swaps, want.Fit, want.VirtualIters, want.RunStats.Swaps)
	}
	if len(got.FitTrace) != len(want.FitTrace) {
		t.Fatalf("%s: trace length %d, want %d", name, len(got.FitTrace), len(want.FitTrace))
	}
	for i := range want.FitTrace {
		if got.FitTrace[i] != want.FitTrace[i] {
			t.Fatalf("%s: trace[%d] = %v, want %v", name, i, got.FitTrace[i], want.FitTrace[i])
		}
	}
	for m := range want.Model.Factors {
		g, w := got.Model.Factors[m], want.Model.Factors[m]
		for i := range w.Data {
			if g.Data[i] != w.Data[i] {
				t.Fatalf("%s: factor %d differs at flat index %d", name, m, i)
			}
		}
	}
}

// TestConstraintInvariantsAcrossFrontends runs every solver mode through
// all three input front-ends (dense, sparse, tiled) and checks the solver
// contract on each: bounded monotone surrogate trace, and — for nonneg —
// element-wise nonnegative factors everywhere. Dense and tiled runs of the
// same tensor must also agree bit-for-bit on factors and trace (the tiled
// front-end parity contract, now under constrained solvers too).
func TestConstraintInvariantsAcrossFrontends(t *testing.T) {
	x := twopcp.RandomDense(rand.New(rand.NewSource(21)), 14, 12, 10)
	tiledPath := filepath.Join(t.TempDir(), "x.tptl")
	if err := twopcp.SaveTiled(tiledPath, x, []int{3, 2, 2}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range constraintCases() {
		t.Run(tc.name, func(t *testing.T) {
			opts := baseOpts(tc.constraint, tc.lambda)

			dense, err := twopcp.Decompose(x, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertTrace(t, "dense", dense, tc.traceTol)

			sparse, err := twopcp.DecomposeSparse(twopcp.FromDense(x), opts)
			if err != nil {
				t.Fatal(err)
			}
			assertTrace(t, "sparse", sparse, tc.traceTol)

			tiled, err := twopcp.DecomposeTiledFile(tiledPath, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertTrace(t, "tiled", tiled, tc.traceTol)

			if tc.constraint == twopcp.ConstraintNonneg {
				assertNonnegModel(t, "dense", dense)
				assertNonnegModel(t, "sparse", sparse)
				assertNonnegModel(t, "tiled", tiled)
			}

			// Dense and tiled read the same cells, so everything except
			// the final Fit reduction (tile-ordered sums) is bit-equal.
			if len(tiled.FitTrace) != len(dense.FitTrace) {
				t.Fatalf("tiled trace length %d, dense %d", len(tiled.FitTrace), len(dense.FitTrace))
			}
			for i := range dense.FitTrace {
				if tiled.FitTrace[i] != dense.FitTrace[i] {
					t.Fatalf("tiled trace[%d] = %v, dense %v", i, tiled.FitTrace[i], dense.FitTrace[i])
				}
			}
			for m := range dense.Model.Factors {
				if !tiled.Model.Factors[m].Equal(dense.Model.Factors[m]) {
					t.Fatalf("tiled factor %d differs from dense", m)
				}
			}
		})
	}
}

// TestConstrainedDeterminismAcrossParallelism is the acceptance sweep: for
// each solver mode the run is bit-for-bit identical across Phase-1 worker
// counts, kernel worker counts, and prefetch depths/IO workers.
func TestConstrainedDeterminismAcrossParallelism(t *testing.T) {
	x := twopcp.RandomDense(rand.New(rand.NewSource(33)), 12, 12, 12)
	for _, tc := range constraintCases() {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := twopcp.Decompose(x, baseOpts(tc.constraint, tc.lambda))
			if err != nil {
				t.Fatal(err)
			}
			variants := []struct {
				name                                   string
				workers, kernelWorkers, depth, ioWorks int
			}{
				{"serial", 1, 1, 0, 0},
				{"workers3-kernel2", 3, 2, 0, 0},
				{"prefetch2", 1, 1, 2, 2},
				{"workers2-prefetch3-io3", 2, 2, 3, 3},
			}
			for _, v := range variants {
				opts := baseOpts(tc.constraint, tc.lambda)
				opts.Workers = v.workers
				opts.KernelWorkers = v.kernelWorkers
				opts.PrefetchDepth = v.depth
				opts.IOWorkers = v.ioWorks
				got, err := twopcp.Decompose(x, opts)
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				assertSameRun(t, v.name, got, ref)
			}
		})
	}
}

// TestConstraintOptionValidation: invalid constraint combinations are
// rejected before any work happens.
func TestConstraintOptionValidation(t *testing.T) {
	x := twopcp.RandomDense(rand.New(rand.NewSource(1)), 6, 6, 6)
	bad := []twopcp.Options{
		{Rank: 2, Seed: 1, Constraint: twopcp.ConstraintRidge},                     // ridge without lambda
		{Rank: 2, Seed: 1, Constraint: twopcp.ConstraintRidge, Lambda: -1},         // negative lambda
		{Rank: 2, Seed: 1, Constraint: twopcp.ConstraintNonneg, Lambda: 0.5},       // lambda without ridge
		{Rank: 2, Seed: 1, Constraint: twopcp.ConstraintNone, Lambda: 0.5},         // lambda without ridge
		{Rank: 2, Seed: 1, Constraint: twopcp.Constraint(99)},                      // unknown constraint
		{Rank: 2, Seed: 1, Constraint: twopcp.ConstraintRidge, Lambda: math.NaN()}, // NaN lambda
	}
	for i, opts := range bad {
		if _, err := twopcp.Decompose(x, opts); err == nil {
			t.Fatalf("case %d (%+v): invalid constraint options accepted", i, opts)
		}
	}
	if _, err := twopcp.ParseConstraint("bogus"); err == nil {
		t.Fatal("ParseConstraint accepted bogus")
	}
	for _, s := range []string{"none", "ridge", "nonneg"} {
		c, err := twopcp.ParseConstraint(s)
		if err != nil {
			t.Fatal(err)
		}
		if c.String() != s {
			t.Fatalf("round trip %q -> %q", s, c.String())
		}
	}
}

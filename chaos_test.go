package twopcp

import (
	"errors"
	"testing"
	"time"
)

// chaosRetry is a fast retry policy for tests.
func chaosRetry(maxRetries int) RetryPolicy {
	return RetryPolicy{
		MaxRetries:  maxRetries,
		BaseBackoff: 10 * time.Microsecond,
		MaxBackoff:  200 * time.Microsecond,
		Seed:        7,
	}
}

func sameResult(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if got.Fit != want.Fit {
		t.Fatalf("%s: fit %v != %v", name, got.Fit, want.Fit)
	}
	if len(got.FitTrace) != len(want.FitTrace) {
		t.Fatalf("%s: trace length %d != %d", name, len(got.FitTrace), len(want.FitTrace))
	}
	for i := range got.FitTrace {
		if got.FitTrace[i] != want.FitTrace[i] {
			t.Fatalf("%s: FitTrace[%d] = %v, want %v", name, i, got.FitTrace[i], want.FitTrace[i])
		}
	}
	if got.RunStats.Swaps != want.RunStats.Swaps {
		t.Fatalf("%s: swaps %d != %d", name, got.RunStats.Swaps, want.RunStats.Swaps)
	}
	if got.RunStats.BytesRead != want.RunStats.BytesRead || got.RunStats.BytesWritten != want.RunStats.BytesWritten {
		t.Fatalf("%s: store traffic (%d,%d) != (%d,%d) — retries must not count failed ops", name,
			got.RunStats.BytesRead, got.RunStats.BytesWritten, want.RunStats.BytesRead, want.RunStats.BytesWritten)
	}
	for m := range want.Model.Factors {
		g, w := got.Model.Factors[m], want.Model.Factors[m]
		for i := range w.Data {
			if g.Data[i] != w.Data[i] {
				t.Fatalf("%s: factor %d differs at flat index %d", name, m, i)
			}
		}
	}
}

// TestChaosFaultSweepBitIdentical is the in-process chaos harness: runs
// with seeded transient faults injected at increasing rates into both
// phases (block reads, store reads and writes) must — when the retry
// layer heals every fault — produce bit-identical factors, FitTrace and
// I/O accounting to the fault-free run.
func TestChaosFaultSweepBitIdentical(t *testing.T) {
	x := lowRankDense(3, 2, 12, 12, 12)
	base := Options{
		Rank: 2, Partitions: []int{3}, Seed: 7, MaxIters: 8,
		BufferFraction: 0.5,
	}

	clean, err := Decompose(x, base)
	if err != nil {
		t.Fatal(err)
	}

	sawRetries := false
	for _, rate := range []float64{0.001, 0.01, 0.05} {
		opts := base
		opts.Retry = chaosRetry(50)
		opts.Chaos = Chaos{ReadRate: rate, WriteRate: rate, BlockRate: rate, Seed: 99}
		res, err := Decompose(x, opts)
		if err != nil {
			t.Fatalf("rate %g: %v", rate, err)
		}
		sameResult(t, "chaos", res, clean)
		if res.RunStats.Retries > 0 {
			sawRetries = true
		}
	}
	if !sawRetries {
		t.Fatal("no retries across the whole sweep — fault injection not exercised")
	}
}

// TestChaosRetryDisabledMatchesClean: with no chaos and no retry policy,
// adding a retry policy alone must not change anything either (the layer
// is pass-through without faults).
func TestChaosRetryDisabledMatchesClean(t *testing.T) {
	x := lowRankDense(3, 2, 10, 10, 10)
	base := Options{Rank: 2, Seed: 7, MaxIters: 6}
	clean, err := Decompose(x, base)
	if err != nil {
		t.Fatal(err)
	}
	withRetry := base
	withRetry.Retry = chaosRetry(8)
	res, err := Decompose(x, withRetry)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "retry-no-faults", res, clean)
	if res.RunStats.Retries != 0 {
		t.Fatalf("Retries = %d on a fault-free run", res.RunStats.Retries)
	}
}

// TestChaosPoisonQuarantineAndResume: a permanently failing block
// surfaces as a typed quarantine error; fixing the fault and resuming the
// checkpoint recomputes only what's missing and finishes bit-identical to
// a clean run.
func TestChaosPoisonQuarantineAndResume(t *testing.T) {
	x := lowRankDense(3, 2, 12, 12, 12)
	base := Options{Rank: 2, Partitions: []int{2}, Seed: 7, MaxIters: 6}

	clean, err := Decompose(x, base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	poisoned := base
	poisoned.Checkpoint = dir
	poisoned.Retry = chaosRetry(2)
	poisoned.Chaos = Chaos{PoisonBlocks: []int{3}, Seed: 1}
	_, err = Decompose(x, poisoned)
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QuarantineError", err)
	}
	if len(qe.Blocks) != 1 || qe.Blocks[0] != 3 {
		t.Fatalf("quarantined %v, want [3]", qe.Blocks)
	}

	resumed := base
	resumed.Checkpoint = dir
	resumed.Resume = true
	res, err := Decompose(x, resumed)
	if err != nil {
		t.Fatalf("resume after quarantine: %v", err)
	}
	sameResult(t, "quarantine-resume", res, clean)
}

// TestChaosInterruptedViaStop: a pre-closed Stop channel drains the run
// with an error wrapping ErrInterrupted; with a checkpoint directory the
// run is resumable bit-exactly.
func TestChaosInterruptedViaStop(t *testing.T) {
	x := lowRankDense(3, 2, 12, 12, 12)
	base := Options{Rank: 2, Partitions: []int{2}, Seed: 7, MaxIters: 6}
	clean, err := Decompose(x, base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	stop := make(chan struct{})
	close(stop)
	stopped := base
	stopped.Checkpoint = dir
	stopped.Stop = stop
	_, err = Decompose(x, stopped)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}

	resumed := base
	resumed.Checkpoint = dir
	resumed.Resume = true
	res, err := Decompose(x, resumed)
	if err != nil {
		t.Fatalf("resume after drain: %v", err)
	}
	sameResult(t, "drain-resume", res, clean)
}

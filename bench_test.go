// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VIII) at test-friendly scale. Each benchmark reports the paper's
// metric for its experiment via b.ReportMetric (seconds, swaps per virtual
// iteration, or accuracy difference) in addition to Go's timing output.
// Run: go test -bench=. -benchmem
//
// EXPERIMENTS.md records paper-vs-measured values for the full-scale runs
// (cmd/experiments).
package twopcp_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"twopcp"
	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/experiments"
	"twopcp/internal/grid"
	"twopcp/internal/haten2"
	"twopcp/internal/mapreduce"
	"twopcp/internal/phase1"
	"twopcp/internal/refine"
	"twopcp/internal/schedule"
	"twopcp/internal/tensor"
)

// BenchmarkTable1 regenerates Table I: 2PCP vs HaTen2 execution time on
// dense tensors of growing size (paper: 500³–1500³ at density 0.2; here
// 32³–64³, shape-preserving — the 2PCP advantage appears above ~50K
// nonzeros, where HaTen2's shuffle volume starts to dominate).
func BenchmarkTable1(b *testing.B) {
	for _, side := range []int{32, 48, 64} {
		b.Run("2PCP/side="+itoa(side), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := denseUniform(rng, 0.2, side)
			b.ResetTimer()
			var fit float64
			for i := 0; i < b.N; i++ {
				res, err := twopcp.Decompose(x, twopcp.Options{
					Rank: 10, Partitions: []int{2},
					Schedule: twopcp.ZOrder, Replacement: twopcp.Forward,
					BufferFraction: 0.5, MaxIters: 10, Tol: 1e-3, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				fit = res.Fit
			}
			b.ReportMetric(fit, "fit")
		})
		b.Run("HaTen2/side="+itoa(side), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := tensor.FromDense(denseUniform(rng, 0.2, side))
			b.ResetTimer()
			var fit float64
			for i := 0; i < b.N; i++ {
				kt, _, err := haten2.Decompose(x, haten2.Options{
					Rank: 10, MaxIters: 1, Seed: 1,
					MR: mapreduce.Config{NumReducers: 4},
				})
				if err != nil {
					b.Fatal(err)
				}
				fit = kt.FitSparse(x)
			}
			b.ReportMetric(fit, "fit")
		})
	}
}

// BenchmarkFigure11 regenerates Figure 11: 2PCP execution time as a
// function of the number of nonzero elements (the scaling curve).
func BenchmarkFigure11(b *testing.B) {
	for _, side := range []int{12, 16, 20, 24} {
		rng := rand.New(rand.NewSource(2))
		x := denseUniform(rng, 0.2, side)
		b.Run("nnz="+itoa(x.NNZ()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := twopcp.Decompose(x, twopcp.Options{
					Rank: 10, Partitions: []int{2},
					Schedule: twopcp.ZOrder, Replacement: twopcp.Forward,
					BufferFraction: 0.5, MaxIters: 10, Tol: 1e-3, Seed: 2,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2 regenerates Table II: naive out-of-core CP vs 2PCP with
// LRU and FOR replacement (Z-order schedule), including the simulated
// I/O latency that makes the workload disk-bound (paper footnote 5).
func BenchmarkTable2(b *testing.B) {
	b.Run("FullTable", func(b *testing.B) {
		var naive, lru, forw time.Duration
		for i := 0; i < b.N; i++ {
			res, err := experiments.RunTable2(experiments.Table2Config{
				Side: 16, Rank: 4, SwapLatency: 500 * time.Microsecond,
				NaiveIters: 3, MaxVirtualIters: 9, Seed: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			naive = res.Naive
			lru = res.Rows[1].Phase2LRU
			forw = res.Rows[1].Phase2FOR
		}
		b.ReportMetric(naive.Seconds(), "naive-sec")
		b.ReportMetric(lru.Seconds(), "ph2-lru-sec")
		b.ReportMetric(forw.Seconds(), "ph2-for-sec")
	})
}

// BenchmarkFigure12 regenerates Figure 12: steady-state data swaps per
// virtual iteration for every schedule × policy. Reported metrics follow
// the paper's headline cells: MC+LRU (worst) and HO+FOR (best).
func BenchmarkFigure12(b *testing.B) {
	for _, frac := range []float64{1.0 / 3, 1.0 / 2, 2.0 / 3} {
		b.Run("buffer="+ftoa(frac), func(b *testing.B) {
			var worst, best float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFigure12(experiments.Figure12Config{
					Partitions:      []int{2, 4, 8},
					BufferFractions: []float64{frac},
					Seed:            4,
				})
				if err != nil {
					b.Fatal(err)
				}
				worst = res.Lookup(8, frac, schedule.ModeCentric, buffer.LRU).Swaps
				best = res.Lookup(8, frac, schedule.HilbertOrder, buffer.Forward).Swaps
			}
			b.ReportMetric(worst, "swaps/MC-LRU")
			b.ReportMetric(best, "swaps/HO-FOR")
		})
	}
}

// BenchmarkFigure13 regenerates Figure 13: the relative accuracy difference
// of block-centric schedules vs mode-centric on a sparse (Epinions-like)
// and the dense (Face-like) dataset.
func BenchmarkFigure13(b *testing.B) {
	var epinionsHO, faceHO float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure13(experiments.Figure13Config{
			Datasets:        []string{"Epinions", "Face"},
			Partitions:      []int{2},
			MaxVirtualIters: 30,
			Rank:            4,
			Runs:            1,
			FaceScale:       20,
			Seed:            5,
		})
		if err != nil {
			b.Fatal(err)
		}
		epinionsHO = res.Lookup("Epinions", 2, schedule.HilbertOrder).RelDiffPct
		faceHO = res.Lookup("Face", 2, schedule.HilbertOrder).RelDiffPct
	}
	b.ReportMetric(epinionsHO, "epinions-HO-%")
	b.ReportMetric(faceHO, "face-HO-%")
}

// BenchmarkAblationSchedules isolates the schedule choice (paper §VI): swaps
// per virtual iteration for each traversal under the same FOR policy.
func BenchmarkAblationSchedules(b *testing.B) {
	for _, kind := range schedule.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			var swaps float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFigure12(experiments.Figure12Config{
					Partitions:      []int{8},
					BufferFractions: []float64{1.0 / 3},
					Seed:            6,
				})
				if err != nil {
					b.Fatal(err)
				}
				swaps = res.Lookup(8, 1.0/3, kind, buffer.Forward).Swaps
			}
			b.ReportMetric(swaps, "swaps/iter")
		})
	}
}

// BenchmarkAblationPolicies isolates the replacement policy (paper §VII)
// under the Hilbert schedule.
func BenchmarkAblationPolicies(b *testing.B) {
	for _, pol := range buffer.Policies {
		b.Run(pol.String(), func(b *testing.B) {
			var swaps float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFigure12(experiments.Figure12Config{
					Partitions:      []int{8},
					BufferFractions: []float64{1.0 / 3},
					Seed:            7,
				})
				if err != nil {
					b.Fatal(err)
				}
				swaps = res.Lookup(8, 1.0/3, schedule.HilbertOrder, pol).Swaps
			}
			b.ReportMetric(swaps, "swaps/iter")
		})
	}
}

// BenchmarkAblationPQTracker compares the two P/Q bookkeeping strategies
// (DESIGN.md ablation): the per-mode component store vs the paper's
// literal in-place Hadamard-division rule. Both produce identical factors;
// this measures their Phase-2 cost difference.
func BenchmarkAblationPQTracker(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := denseUniform(rng, 0.5, 24)
	p := gridCube(24, 4)
	src, err := phase1.NewDenseSource(x, p)
	if err != nil {
		b.Fatal(err)
	}
	p1, err := phase1.Run(src, phase1.Options{Rank: 8, MaxIters: 10, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	for _, divide := range []bool{false, true} {
		name := "components"
		if divide {
			name = "divide"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := refine.New(refine.Config{
					Phase1: p1, Store: blockstore.NewMemStore(),
					Schedule: schedule.HilbertOrder, Policy: buffer.Forward,
					BufferFraction: 0.5, MaxVirtualIters: 12, Tol: -1,
					DivideUpdate: divide,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPhase0Sketch is the speed half of the Phase-0 acceptance
// criterion, baselined in BENCH_phase0_sketch.json and gated by
// cmd/benchgate:
//
//   - lowmlrank runs the frozen compress-then-refine comparison
//     (experiments.RunAccel: a 48³ multilinear-rank-4 cube with a
//     superdiagonal core, decomposed at rank 8 to effective convergence)
//     and reports the warm start's Phase-1 speedup — (phase0+phase1)
//     accelerated vs brute-force phase1 — which must stay ≥ 3×, and the
//     |fit| difference between the converged arms, which must stay
//     ≤ 1e-3.
//   - fallback-brute / fallback-accel time the full pipeline on an
//     unstructured cube whose Tucker core cannot undercut half the
//     tensor: Phase 0 declines structurally before reading any block,
//     so *requesting* an accelerator on unhelpable data must cost ≤ 5%.
func BenchmarkPhase0Sketch(b *testing.B) {
	b.Run("lowmlrank", func(b *testing.B) {
		var speedup, delta float64
		for i := 0; i < b.N; i++ {
			res, err := experiments.RunAccel(experiments.AccelConfig{
				Side: 48, Parts: 2, MLRank: 4, Rank: 8,
				Noise: 1e-5, Diag: true, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Accelerated {
				b.Fatal("Phase 0 fell back on the low-multilinear-rank benchmark input")
			}
			// Best-of across iterations: the fit delta is deterministic,
			// the speedup is a wall-clock ratio that only ever loses to
			// scheduling noise.
			if res.Phase1Speedup > speedup {
				speedup = res.Phase1Speedup
			}
			delta = math.Abs(res.AccelFit - res.BruteFit)
		}
		b.ReportMetric(speedup, "speedup-x")
		b.ReportMetric(delta, "fit-delta")
	})

	fallbackOpts := func(a twopcp.Accelerator) twopcp.Options {
		return twopcp.Options{
			Rank: 8, Partitions: []int{2}, BufferFraction: 0.5,
			MaxIters: 10, Tol: -1, Seed: 5, Accelerator: a,
		}
	}
	rng := rand.New(rand.NewSource(5))
	// Side 16 at rank 8 (+ default oversample 5) gives per-mode core dims
	// min(16, 13) = 13, and 2·13³ ≥ 16³ trips the structural fallback.
	x := denseUniform(rng, 0.5, 16)
	b.Run("fallback-brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := twopcp.Decompose(x, fallbackOpts(twopcp.AccelNone)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fallback-accel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := twopcp.Decompose(x, fallbackOpts(twopcp.AccelTucker))
			if err != nil {
				b.Fatal(err)
			}
			if res.RunStats.Accelerated {
				b.Fatal("expected a structural fallback on the unstructured cube")
			}
		}
	})
}

func gridCube(dim, k int) *grid.Pattern { return grid.UniformCube(3, dim, k) }

// BenchmarkAblationGridParafac compares the original mode-centric
// grid-PARAFAC iteration of [22] (parallel Jacobi passes, whole-mode
// working set) against 2PCP's buffered block-centric engine on the same
// Phase-1 output, reporting store reads — the I/O the paper's fine-grained
// scheduling eliminates.
func BenchmarkAblationGridParafac(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := denseUniform(rng, 0.5, 24)
	p := gridCube(24, 4)
	src, err := phase1.NewDenseSource(x, p)
	if err != nil {
		b.Fatal(err)
	}
	p1, err := phase1.Run(src, phase1.Options{Rank: 8, MaxIters: 10, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("gridparafac", func(b *testing.B) {
		var reads int64
		for i := 0; i < b.N; i++ {
			store := blockstore.NewMemStore()
			if _, err := refine.RunGridParafac(refine.Config{
				Phase1: p1, Store: store,
				MaxVirtualIters: 10, Tol: -1,
			}, 0); err != nil {
				b.Fatal(err)
			}
			reads = store.Stats().Reads
		}
		b.ReportMetric(float64(reads), "store-reads")
	})
	b.Run("buffered-2pcp", func(b *testing.B) {
		var reads int64
		for i := 0; i < b.N; i++ {
			eng, err := refine.New(refine.Config{
				Phase1: p1, Store: blockstore.NewMemStore(),
				Schedule: schedule.HilbertOrder, Policy: buffer.Forward,
				BufferFraction: 0.5, MaxVirtualIters: 10, Tol: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				b.Fatal(err)
			}
			reads = res.BufferStats.Fetches
		}
		b.ReportMetric(float64(reads), "store-reads")
	})
}

// BenchmarkAblationCurveConstruction measures schedule-construction cost as
// the mode count grows (paper §VI-C.2: practical Hilbert mappings for
// high-mode tensors are hard; Skilling's transform keeps ours O(N) state,
// and Z-order interleaving stays cheapest).
func BenchmarkAblationCurveConstruction(b *testing.B) {
	for _, nModes := range []int{3, 6, 10} {
		dims := make([]int, nModes)
		ks := make([]int, nModes)
		for i := range dims {
			dims[i] = 4
			ks[i] = 2
		}
		p, err := grid.New(dims, ks)
		if err != nil {
			b.Fatal(err)
		}
		for _, kind := range []schedule.Kind{schedule.ZOrder, schedule.HilbertOrder} {
			b.Run(kind.String()+"/modes="+itoa(nModes), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s := schedule.New(kind, p)
					if len(s.Steps) != 1<<uint(nModes) {
						b.Fatalf("steps = %d", len(s.Steps))
					}
				}
			})
		}
	}
}

func denseUniform(rng *rand.Rand, density float64, side int) *twopcp.Dense {
	x := twopcp.NewDense(side, side, side)
	for i := range x.Data {
		if rng.Float64() < density {
			x.Data[i] = rng.Float64() + 1e-9
		}
	}
	return x
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func ftoa(f float64) string {
	switch {
	case f < 0.4:
		return "1of3"
	case f < 0.6:
		return "1of2"
	default:
		return "2of3"
	}
}

module twopcp

go 1.24

module twopcp

go 1.23

package twopcp_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"twopcp"
)

// Source-parity suite: decomposing via a .tptl file must yield exactly
// the same factors, fit trajectory and swap counts as the in-memory
// DenseSource path, including when the file tiling differs from the
// run's partition pattern.

func tiledParityOpts(storeDir string) twopcp.Options {
	return twopcp.Options{
		Rank:           4,
		Partitions:     []int{3, 2, 2},
		Schedule:       twopcp.HilbertOrder,
		Replacement:    twopcp.Forward,
		BufferFraction: 0.5,
		MaxIters:       20,
		Tol:            1e-8,
		Seed:           17,
		StoreDir:       storeDir,
	}
}

func TestDecomposeTiledFileParity(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	x := twopcp.RandomDense(rng, 12, 10, 8)
	dir := t.TempDir()

	want, err := twopcp.Decompose(x, tiledParityOpts(filepath.Join(dir, "units-mem")))
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name  string
		tiles []int
	}{
		{"tiling-matches-pattern", []int{3, 2, 2}},
		{"coarser-tiling", []int{1, 2, 1}},
		{"finer-tiling", []int{6, 5, 4}},
		{"mismatched-tiling", []int{5, 3, 3}},
		{"auto-tiling", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".tptl")
			if err := twopcp.SaveTiled(path, x, tc.tiles); err != nil {
				t.Fatal(err)
			}
			got, err := twopcp.DecomposeTiledFile(path, tiledParityOpts(filepath.Join(dir, tc.name+"-units")))
			if err != nil {
				t.Fatal(err)
			}
			for m := range want.Model.Factors {
				if !want.Model.Factors[m].Equal(got.Model.Factors[m]) {
					t.Fatalf("mode-%d factor differs from the in-memory path", m)
				}
			}
			if len(got.FitTrace) != len(want.FitTrace) {
				t.Fatalf("FitTrace length %d, want %d", len(got.FitTrace), len(want.FitTrace))
			}
			for i := range want.FitTrace {
				if got.FitTrace[i] != want.FitTrace[i] {
					t.Fatalf("FitTrace[%d] = %v, want %v", i, got.FitTrace[i], want.FitTrace[i])
				}
			}
			if got.RunStats.Swaps != want.RunStats.Swaps {
				t.Fatalf("Swaps = %d, want %d", got.RunStats.Swaps, want.RunStats.Swaps)
			}
			if got.VirtualIters != want.VirtualIters || got.Converged != want.Converged {
				t.Fatalf("iters/converged = %d/%v, want %d/%v",
					got.VirtualIters, got.Converged, want.VirtualIters, want.Converged)
			}
			// The tile-streamed fit reduction sums in a different order,
			// so allow round-off but nothing more.
			if math.Abs(got.Fit-want.Fit) > 1e-12 {
				t.Fatalf("Fit = %.17g, want %.17g", got.Fit, want.Fit)
			}
		})
	}
}

func TestDecomposeTiledFileWithPrefetch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := twopcp.RandomDense(rng, 9, 9, 9)
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tptl")
	if err := twopcp.SaveTiled(path, x, []int{2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	opts := tiledParityOpts(filepath.Join(dir, "units"))
	opts.Partitions = []int{3}
	want, err := twopcp.Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.StoreDir = filepath.Join(dir, "units-pf")
	opts.PrefetchDepth = 3
	got, err := twopcp.DecomposeTiledFile(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	for m := range want.Model.Factors {
		if !want.Model.Factors[m].Equal(got.Model.Factors[m]) {
			t.Fatalf("mode-%d factor differs with prefetch over tiled input", m)
		}
	}
	if got.RunStats.Swaps != want.RunStats.Swaps {
		t.Fatalf("Swaps = %d, want %d", got.RunStats.Swaps, want.RunStats.Swaps)
	}
}

func TestDecomposeTiledFileErrors(t *testing.T) {
	if _, err := twopcp.DecomposeTiledFile(filepath.Join(t.TempDir(), "missing.tptl"),
		twopcp.Options{Rank: 2}); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tptl")
	x := twopcp.RandomDense(rand.New(rand.NewSource(42)), 4, 4)
	if err := twopcp.SaveTiled(path, x, []int{2, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := twopcp.DecomposeTiledFile(path, twopcp.Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
}

package twopcp_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"twopcp"
)

// collector gathers the deterministic form of every event an observer
// sees. OnEvent may be called from many goroutines, so it locks.
type collector struct {
	mu     sync.Mutex
	canons []string
}

func (c *collector) observe(e twopcp.Event) {
	c.mu.Lock()
	c.canons = append(c.canons, e.Canon())
	c.mu.Unlock()
}

// sortedCanons returns the collected multiset in a comparable order.
func (c *collector) sortedCanons() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.canons...)
	sort.Strings(out)
	return out
}

// eventNames returns the distinct event names collected.
func (c *collector) eventNames() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := map[string]int{}
	for _, canon := range c.canons {
		name := canon[len(`{"ev":"`):]
		names[name[:strings.IndexByte(name, '"')]]++
	}
	return names
}

// TestTraceDeterminism is the telemetry half of the determinism contract:
// the multiset of events minus their wall-clock timestamps is identical
// across Phase-1 worker counts and Phase-2 prefetch depths. It runs the
// golden fixture through the tiled front-end at every combination and
// compares the sorted Event.Canon() streams byte-for-byte.
func TestTraceDeterminism(t *testing.T) {
	tiledPath := filepath.Join("testdata", "golden.tptl")
	type config struct{ workers, prefetch int }
	configs := []config{
		{1, 0}, {2, 0}, {7, 0},
		{1, 2}, {2, 2}, {7, 2},
	}
	var baseline []string
	var baseDump string
	for _, cfg := range configs {
		name := fmt.Sprintf("workers=%d_prefetch=%d", cfg.workers, cfg.prefetch)
		opts := goldenOpts(twopcp.ConstraintNone, 0)
		opts.Workers = cfg.workers
		opts.PrefetchDepth = cfg.prefetch
		col := &collector{}
		opts.Observer = &twopcp.Observer{OnEvent: col.observe}
		res, err := twopcp.DecomposeTiledFile(tiledPath, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		canons := col.sortedCanons()
		if len(canons) == 0 {
			t.Fatalf("%s: no events collected", name)
		}
		dump := goldenDump(res)
		if baseline == nil {
			baseline, baseDump = canons, dump
			continue
		}
		if dump != baseDump {
			t.Errorf("%s: result drifted from the workers=1 prefetch=0 run", name)
		}
		if len(canons) != len(baseline) {
			t.Fatalf("%s: %d events, baseline has %d", name, len(canons), len(baseline))
		}
		for i := range canons {
			if canons[i] != baseline[i] {
				t.Fatalf("%s: event multiset diverged from baseline:\n got %s\nwant %s",
					name, canons[i], baseline[i])
			}
		}
	}
}

// TestTracingDoesNotChangeResults checks the other half of the contract:
// a fully-instrumented run (trace + metrics + callback) produces the
// bit-identical factor dump of an uninstrumented one, and every line it
// writes validates against the event schema.
func TestTracingDoesNotChangeResults(t *testing.T) {
	x := goldenTensor()
	opts := goldenOpts(twopcp.ConstraintNone, 0)
	plain, err := twopcp.Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	col := &collector{}
	opts.Observer = &twopcp.Observer{
		Trace:   twopcp.NewRecorder(&buf),
		Metrics: twopcp.NewRegistry(),
		OnEvent: col.observe,
	}
	traced, err := twopcp.Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := opts.Observer.Trace.Close(); err != nil {
		t.Fatal(err)
	}

	if goldenDump(traced) != goldenDump(plain) {
		t.Error("tracing changed the run's numerics")
	}
	if traced.Fit != plain.Fit {
		t.Errorf("tracing changed Fit: %x vs %x", traced.Fit, plain.Fit)
	}

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("trace is empty")
	}
	for i, line := range lines {
		if err := twopcp.ValidateTraceLine(line); err != nil {
			t.Errorf("trace line %d: %v\n%s", i+1, err, line)
		}
	}
	// The callback and the recorder are fed the same stream.
	if got, want := len(col.sortedCanons()), len(lines); got != want {
		t.Errorf("OnEvent saw %d events, trace has %d lines", got, want)
	}
	// Lifecycle and per-phase events must all be present on a dense run.
	names := col.eventNames()
	for _, want := range []string{"run.start", "phase1.block", "phase2.step", "phase2.iter", "buffer.fetch", "run.done"} {
		if names[want] == 0 {
			t.Errorf("no %s events in trace (census: %v)", want, names)
		}
	}
	if got := names["run.start"]; got != 1 {
		t.Errorf("%d run.start events, want 1", got)
	}
	if got := names["run.done"]; got != 1 {
		t.Errorf("%d run.done events, want 1", got)
	}
	// 2 partitions per mode on a 3-mode tensor = 8 grid blocks.
	if got := names["phase1.block"]; got != 8 {
		t.Errorf("%d phase1.block events, want 8", got)
	}
}

// TestMetricsMatchRunStats cross-checks the registry against the run's
// own accounting on a fresh synchronous run: the counters the subsystems
// maintain must agree exactly with the RunStats the pipeline reports, and
// the final run.* gauges must mirror RunStats verbatim.
func TestMetricsMatchRunStats(t *testing.T) {
	reg := twopcp.NewRegistry()
	opts := goldenOpts(twopcp.ConstraintNone, 0)
	opts.Observer = &twopcp.Observer{Metrics: reg}
	res, err := twopcp.DecomposeTiledFile(filepath.Join("testdata", "golden.tptl"), opts)
	if err != nil {
		t.Fatal(err)
	}

	counters := []struct {
		name string
		want int64
	}{
		{"buffer.fetches", res.RunStats.Swaps},
		{"buffer.hits", res.RunStats.BufferHits},
		{"buffer.evictions", res.RunStats.Evictions},
		{"buffer.write_backs", res.RunStats.WriteBacks},
		{"phase1.blocks_done", int64(res.RunStats.Blocks)},
		{"phase1.sweeps", int64(res.RunStats.Phase1Sweeps)},
	}
	for _, c := range counters {
		if got := reg.Counter(c.name).Load(); got != c.want {
			t.Errorf("counter %s = %d, RunStats says %d", c.name, got, c.want)
		}
	}
	// The registry's store counters are monotonic over the whole run —
	// they also see the final factor-assembly reads that RunStats.BytesRead
	// (Phase-2 refinement traffic only) excludes — so the counter bounds
	// the stat from above; the exact figure is the run.bytes_read gauge.
	if got := reg.Counter("blockstore.bytes_read").Load(); got < res.RunStats.BytesRead {
		t.Errorf("counter blockstore.bytes_read = %d < RunStats.BytesRead %d", got, res.RunStats.BytesRead)
	}

	gauges := []struct {
		name string
		want float64
	}{
		{"run.swaps", float64(res.RunStats.Swaps)},
		{"run.buffer_hit_rate", res.RunStats.BufferHitRate},
		{"run.bytes_read", float64(res.RunStats.BytesRead)},
		{"run.bytes_written", float64(res.RunStats.BytesWritten)},
		// phase2.fit tracks the surrogate fit, whose last value is the
		// final FitTrace entry (the true fit in Result.Fit is computed
		// against the input after the engine returns).
		{"phase2.fit", res.FitTrace[len(res.FitTrace)-1]},
		{"phase2.virtual_iters", float64(res.VirtualIters)},
	}
	for _, g := range gauges {
		if got := reg.Gauge(g.name).Load(); got != g.want {
			t.Errorf("gauge %s = %v, RunStats says %v", g.name, got, g.want)
		}
	}

	if res.RunStats.BufferHits > 0 {
		wantRate := float64(res.RunStats.BufferHits) /
			float64(res.RunStats.BufferHits+res.RunStats.Swaps)
		if res.RunStats.BufferHitRate != wantRate {
			t.Errorf("BufferHitRate = %v, want hits/(hits+fetches) = %v",
				res.RunStats.BufferHitRate, wantRate)
		}
	}

	// The Prometheus exposition of the same registry must carry the same
	// totals.
	text := string(reg.PrometheusText())
	wantLine := fmt.Sprintf("twopcp_buffer_fetches_total %d\n", res.RunStats.Swaps)
	if !strings.Contains(text, wantLine) {
		t.Errorf("Prometheus exposition missing %q", strings.TrimSpace(wantLine))
	}
}

// TestTraceCheckpointEvents runs a durable decomposition with tracing on
// and checks the durability events: checkpoint.write events during the
// run, and a no-op resume of the completed run emitting checkpoint.resume
// at stage done plus a fresh run.done.
func TestTraceCheckpointEvents(t *testing.T) {
	dir := t.TempDir()
	opts := goldenOpts(twopcp.ConstraintNone, 0)
	opts.Checkpoint = filepath.Join(dir, "ckpt")
	col := &collector{}
	opts.Observer = &twopcp.Observer{OnEvent: col.observe}
	first, err := twopcp.Decompose(goldenTensor(), opts)
	if err != nil {
		t.Fatal(err)
	}
	names := col.eventNames()
	if names["checkpoint.write"] == 0 {
		t.Errorf("durable run emitted no checkpoint.write events (census: %v)", names)
	}
	if names["checkpoint.resume"] != 0 {
		t.Errorf("fresh run emitted checkpoint.resume (census: %v)", names)
	}

	resumeCol := &collector{}
	opts.Resume = true
	opts.Observer = &twopcp.Observer{OnEvent: resumeCol.observe}
	again, err := twopcp.Decompose(goldenTensor(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if goldenDump(again) != goldenDump(first) {
		t.Error("no-op resume returned different factors")
	}
	rnames := resumeCol.eventNames()
	if rnames["checkpoint.resume"] != 1 {
		t.Errorf("resume emitted %d checkpoint.resume events, want 1 (census: %v)",
			rnames["checkpoint.resume"], rnames)
	}
	if rnames["run.done"] != 1 {
		t.Errorf("resume emitted %d run.done events, want 1", rnames["run.done"])
	}
}

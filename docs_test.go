package twopcp_test

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"twopcp/internal/jobs"
)

// TestAPIDocsMatchRoutes diffs the endpoint headings in docs/API.md
// against the daemon's route table in both directions, so the HTTP
// surface and its documentation cannot drift apart: adding, removing or
// renaming a route fails this test until docs/API.md moves with it.
func TestAPIDocsMatchRoutes(t *testing.T) {
	data, err := os.ReadFile("docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	headingRe := regexp.MustCompile("(?m)^### `([A-Z]+) (/[^`]*)`\\s*$")
	documented := make(map[string]bool)
	for _, m := range headingRe.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]+" "+m[2]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no `### `METHOD /path`` headings found in docs/API.md")
	}
	registered := make(map[string]bool)
	for _, r := range jobs.Routes {
		registered[r.Method+" "+r.Pattern] = true
	}
	for ep := range registered {
		if !documented[ep] {
			t.Errorf("endpoint %q is registered in jobs.Routes but has no heading in docs/API.md", ep)
		}
	}
	for ep := range documented {
		if !registered[ep] {
			t.Errorf("docs/API.md documents %q but jobs.Routes does not register it", ep)
		}
	}
}

// TestDocsLinks resolves every relative markdown link in README.md and
// docs/ so the cookbook cannot accumulate dead cross-references.
func TestDocsLinks(t *testing.T) {
	files := []string{"README.md"}
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}
	linkRe := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") {
				continue // external URL or intra-page anchor
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", file, m[1], err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links found — the link scanner is broken")
	}
}

// TestGodocCoverage walks the root package and the service-layer
// packages with go/doc and fails on any exported identifier missing a
// doc comment. CI also runs staticcheck, but this keeps the
// exported-comment discipline enforced by plain `go test` everywhere.
func TestGodocCoverage(t *testing.T) {
	for _, dir := range []string{".", "internal/jobs", "internal/cli", "internal/factorsnap", "internal/serve"} {
		pkg := parseDocPackage(t, dir)
		if pkg.Doc == "" {
			t.Errorf("%s: package %s has no package comment", dir, pkg.Name)
		}
		var missing []string
		report := func(kind, name, docstr string) {
			if docstr == "" && ast.IsExported(name) {
				missing = append(missing, kind+" "+name)
			}
		}
		for _, v := range append(pkg.Consts, pkg.Vars...) {
			report("value group containing", v.Names[0], v.Doc)
		}
		for _, f := range pkg.Funcs {
			report("func", f.Name, f.Doc)
		}
		for _, ty := range pkg.Types {
			report("type", ty.Name, ty.Doc)
			for _, v := range append(ty.Consts, ty.Vars...) {
				report("value group containing", v.Names[0], v.Doc)
			}
			for _, f := range append(ty.Funcs, ty.Methods...) {
				report("func", fmt.Sprintf("%s (type %s)", f.Name, ty.Name), f.Doc)
			}
		}
		for _, m := range missing {
			t.Errorf("%s: exported %s has no doc comment", dir, m)
		}
	}
}

// parseDocPackage parses the non-test Go files of dir into a go/doc
// package model.
func parseDocPackage(t *testing.T, dir string) *doc.Package {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files", dir)
	}
	pkg, err := doc.NewFromFiles(fset, files, "twopcp/"+dir)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

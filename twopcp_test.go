package twopcp

import (
	"math"
	"math/rand"
	"testing"
)

// lowRankDense builds an exactly rank-r tensor through the public API.
func lowRankDense(seed int64, r int, dims ...int) *Dense {
	rng := rand.New(rand.NewSource(seed))
	factors := make([]*Matrix, len(dims))
	for k, d := range dims {
		factors[k] = randomMatrix(rng, d, r)
	}
	return NewKTensor(factors).Full()
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

func TestDecomposeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truthFactors := make([]*Matrix, 3)
	for k := range truthFactors {
		truthFactors[k] = randomMatrix(rng, 12, 2)
	}
	truth := NewKTensor(truthFactors)
	x := truth.Full()
	res, err := Decompose(x, Options{Rank: 2, Partitions: []int{2}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.95 {
		t.Fatalf("fit = %g", res.Fit)
	}
	// The recovered components must match the ground truth up to
	// permutation and scaling.
	if c := Congruence(res.Model, truth); c < 0.95 {
		t.Fatalf("ground-truth congruence = %g", c)
	}
	if res.Model == nil || res.Model.Rank() != 2 || res.Model.NModes() != 3 {
		t.Fatalf("model = %+v", res.Model)
	}
	if res.VirtualIters == 0 || len(res.FitTrace) != res.VirtualIters {
		t.Fatalf("iteration accounting: %d iters, %d trace", res.VirtualIters, len(res.FitTrace))
	}
	if res.RunStats.Phase1Time <= 0 || res.RunStats.Phase2Time <= 0 {
		t.Fatal("phase timings missing")
	}
}

func TestDecomposeAllSchedulesAndPolicies(t *testing.T) {
	x := lowRankDense(2, 2, 8, 8, 8)
	for _, sched := range []Schedule{ModeCentric, FiberOrder, ZOrder, HilbertOrder} {
		for _, pol := range []Replacement{LRU, MRU, Forward} {
			res, err := Decompose(x, Options{
				Rank: 2, Schedule: sched, Replacement: pol,
				BufferFraction: 0.5, Seed: 3,
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", sched, pol, err)
			}
			if res.Fit < 0.9 {
				t.Fatalf("%v/%v: fit = %g", sched, pol, res.Fit)
			}
		}
	}
}

func TestDecomposeSwapAccounting(t *testing.T) {
	x := RandomDense(rand.New(rand.NewSource(3)), 16, 16, 16)
	full, err := Decompose(x, Options{Rank: 2, Partitions: []int{4}, BufferFraction: 1, MaxIters: 10, Tol: 1e-9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Decompose(x, Options{Rank: 2, Partitions: []int{4}, BufferFraction: 1.0 / 3, MaxIters: 10, Tol: 1e-9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tight.RunStats.Swaps <= full.RunStats.Swaps {
		t.Fatalf("tight buffer should swap more: %d vs %d", tight.RunStats.Swaps, full.RunStats.Swaps)
	}
	if tight.RunStats.SwapsPerIter <= 0 || tight.RunStats.BytesRead == 0 {
		t.Fatalf("I/O accounting missing: %+v", tight)
	}
}

func TestDecomposeSparseEndToEnd(t *testing.T) {
	x := RandomCOO(rand.New(rand.NewSource(4)), 0.2, 12, 10, 8)
	res, err := DecomposeSparse(x, Options{Rank: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < -1 || res.Fit > 1 {
		t.Fatalf("implausible fit %g", res.Fit)
	}
	dims := res.Model.Dims()
	if dims[0] != 12 || dims[1] != 10 || dims[2] != 8 {
		t.Fatalf("model dims = %v", dims)
	}
}

func TestDecomposeFileStore(t *testing.T) {
	x := lowRankDense(5, 2, 8, 8, 8)
	dir := t.TempDir()
	res, err := Decompose(x, Options{Rank: 2, StoreDir: dir, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Decompose(x, Options{Rank: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fit-mem.Fit) > 1e-9 {
		t.Fatalf("file-store fit %g != mem fit %g", res.Fit, mem.Fit)
	}
}

func TestOptionsValidation(t *testing.T) {
	x := NewDense(4, 4)
	if _, err := Decompose(x, Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := Decompose(x, Options{Rank: 2, Partitions: []int{2, 2, 2}}); err == nil {
		t.Fatal("partition arity mismatch accepted")
	}
	if _, err := Decompose(x, Options{Rank: 2, Partitions: []int{0}}); err == nil {
		t.Fatal("zero partitions accepted")
	}
}

func TestPartitionsBroadcastAndClamp(t *testing.T) {
	// One value broadcasts to all modes, clamped to mode sizes.
	x := lowRankDense(6, 1, 8, 8, 3)
	res, err := Decompose(x, Options{Rank: 1, Partitions: []int{4}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.9 {
		t.Fatalf("fit = %g", res.Fit)
	}
}

func TestCPALSBaseline(t *testing.T) {
	x := lowRankDense(7, 2, 10, 10, 10)
	kt, fit, iters, err := CPALS(x, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if fit < 0.95 || iters == 0 || kt.Rank() != 2 {
		t.Fatalf("CPALS: fit=%g iters=%d", fit, iters)
	}
}

func TestDeterminism(t *testing.T) {
	x := RandomDense(rand.New(rand.NewSource(8)), 10, 10, 10)
	r1, err := Decompose(x, Options{Rank: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Decompose(x, Options{Rank: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fit != r2.Fit || r1.RunStats.Swaps != r2.RunStats.Swaps {
		t.Fatalf("nondeterministic: fit %g/%g swaps %d/%d", r1.Fit, r2.Fit, r1.RunStats.Swaps, r2.RunStats.Swaps)
	}
}

package twopcp_test

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"twopcp"
	"twopcp/internal/datasets"
	"twopcp/internal/runstate"
)

// Root-level accelerator suite: the Phase-0 contracts hold through the
// public pipeline on every front-end and at every parallelism setting,
// mirroring the constraint suite in invariants_test.go. (The sketch-layer
// numerics — range-finder orthonormality, core projection, warm-start
// recovery — live in internal/sketch/sketch_test.go.)

// accelCases enumerates the accelerators through the public options.
func accelCases() []struct {
	name  string
	accel twopcp.Accelerator
} {
	return []struct {
		name  string
		accel twopcp.Accelerator
	}{
		{"tucker", twopcp.AccelTucker},
		{"sketched", twopcp.AccelSketched},
	}
}

// accelTensor is the shared low-multilinear-rank input: the structured
// data the Tucker compressor targets (a random dense cube would trip the
// structural fallback only at tiny sizes, and says nothing about fit).
func accelTensor(seed int64) *twopcp.Dense {
	spec := datasets.LowMLRankSpec{R: 3, Noise: 0.01}
	return spec.Generate(rand.New(rand.NewSource(seed)), 14, 12, 10)
}

func accelOpts(a twopcp.Accelerator) twopcp.Options {
	opts := baseOpts(twopcp.ConstraintNone, 0)
	opts.Accelerator = a
	return opts
}

// TestAcceleratorInvariantsAcrossFrontends runs both accelerators through
// all three input front-ends and checks the pipeline contract on each:
// bounded fit trace, and bit-exact dense/tiled parity (the Phase-0 sketch
// streams the same blocks from either front-end).
func TestAcceleratorInvariantsAcrossFrontends(t *testing.T) {
	x := accelTensor(21)
	tiledPath := filepath.Join(t.TempDir(), "x.tptl")
	if err := twopcp.SaveTiled(tiledPath, x, []int{3, 2, 2}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range accelCases() {
		t.Run(tc.name, func(t *testing.T) {
			opts := accelOpts(tc.accel)

			dense, err := twopcp.Decompose(x, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertTrace(t, "dense", dense, 1.1) // bounds only: warm-started Phase 2 may trade surrogate fit early

			sparse, err := twopcp.DecomposeSparse(twopcp.FromDense(x), opts)
			if err != nil {
				t.Fatal(err)
			}
			assertTrace(t, "sparse", sparse, 1.1)

			tiled, err := twopcp.DecomposeTiledFile(tiledPath, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertTrace(t, "tiled", tiled, 1.1)

			if len(tiled.FitTrace) != len(dense.FitTrace) {
				t.Fatalf("tiled trace length %d, dense %d", len(tiled.FitTrace), len(dense.FitTrace))
			}
			for i := range dense.FitTrace {
				if tiled.FitTrace[i] != dense.FitTrace[i] {
					t.Fatalf("tiled trace[%d] = %v, dense %v", i, tiled.FitTrace[i], dense.FitTrace[i])
				}
			}
			for m := range dense.Model.Factors {
				if !tiled.Model.Factors[m].Equal(dense.Model.Factors[m]) {
					t.Fatalf("tiled factor %d differs from dense", m)
				}
			}
		})
	}
}

// TestAcceleratorNonnegExpansion: the Tucker warm start composes with the
// nonneg solver — the expanded init is clamped, so every factor entry
// stays ≥ 0 through Phase 1 and Phase 2.
func TestAcceleratorNonnegExpansion(t *testing.T) {
	x := accelTensor(22)
	for _, tc := range accelCases() {
		t.Run(tc.name, func(t *testing.T) {
			opts := accelOpts(tc.accel)
			opts.Constraint = twopcp.ConstraintNonneg
			res, err := twopcp.Decompose(x, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertNonnegModel(t, tc.name, res)
		})
	}
}

// TestAcceleratedFitNearBruteOracle is the accuracy half of the
// acceptance criterion: on a low-multilinear-rank input decomposed to
// effective convergence, the accelerated final fit must land within 1e-3
// of the brute-force fit (the speed half is BenchmarkPhase0Sketch and its
// benchgate baseline, at the full benchmark size).
func TestAcceleratedFitNearBruteOracle(t *testing.T) {
	spec := datasets.LowMLRankSpec{R: 4, Noise: 1e-5, Diag: true}
	x := spec.Generate(rand.New(rand.NewSource(1)), 24, 24, 24)
	opts := twopcp.Options{
		Rank:           8, // overparameterized vs the true CP rank: keeps cold ALS out of odeco local optima
		Partitions:     []int{2},
		Seed:           1,
		Phase1MaxIters: 500,
		Phase1Tol:      1e-6,
		MaxIters:       2000,
		Tol:            1e-10,
	}
	brute, err := twopcp.Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	accel := opts
	accel.Accelerator = twopcp.AccelTucker
	got, err := twopcp.Decompose(x, accel)
	if err != nil {
		t.Fatal(err)
	}
	if !got.RunStats.Accelerated {
		t.Fatal("Phase 0 fell back on a low-multilinear-rank input")
	}
	if got.Fit < 0.99 || brute.Fit < 0.99 {
		t.Fatalf("fits too low to compare: accel %v, brute %v", got.Fit, brute.Fit)
	}
	if d := got.Fit - brute.Fit; d < -1e-3 || d > 1e-3 {
		t.Fatalf("accel fit %v vs brute %v: |delta| %g > 1e-3", got.Fit, brute.Fit, d)
	}
}

// TestAcceleratorDeterminismAcrossParallelism: accelerated runs are
// bit-for-bit identical across Phase-1 worker counts, kernel worker
// counts and prefetch depths — the seeded sketches and serial Phase-0
// block streaming keep Phase 0 out of every parallelism knob.
func TestAcceleratorDeterminismAcrossParallelism(t *testing.T) {
	x := accelTensor(33)
	for _, tc := range accelCases() {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := twopcp.Decompose(x, accelOpts(tc.accel))
			if err != nil {
				t.Fatal(err)
			}
			if tc.accel == twopcp.AccelTucker && !ref.RunStats.Accelerated {
				t.Fatal("Phase 0 fell back on a low-multilinear-rank input")
			}
			variants := []struct {
				name                                   string
				workers, kernelWorkers, depth, ioWorks int
			}{
				{"serial", 1, 1, 0, 0},
				{"workers3-kernel2", 3, 2, 0, 0},
				{"prefetch2", 1, 1, 2, 2},
				{"workers2-prefetch3-io3", 2, 2, 3, 3},
			}
			for _, v := range variants {
				opts := accelOpts(tc.accel)
				opts.Workers = v.workers
				opts.KernelWorkers = v.kernelWorkers
				opts.PrefetchDepth = v.depth
				opts.IOWorkers = v.ioWorks
				got, err := twopcp.Decompose(x, opts)
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				assertSameRun(t, v.name, got, ref)
			}
		})
	}
}

// TestAccelOptionValidation: accelerator knobs without an accelerator —
// and malformed accelerator options — are rejected before any work.
func TestAccelOptionValidation(t *testing.T) {
	x := twopcp.RandomDense(rand.New(rand.NewSource(1)), 6, 6, 6)
	bad := []twopcp.Options{
		{Rank: 2, Seed: 1, Phase0Rank: 3},                                         // Phase0Rank without accelerator
		{Rank: 2, Seed: 1, SketchOversample: 5},                                   // oversample without accelerator
		{Rank: 2, Seed: 1, Accelerator: twopcp.AccelTucker, Phase0Rank: -1},       // negative rank
		{Rank: 2, Seed: 1, Accelerator: twopcp.AccelTucker, SketchOversample: -2}, // negative oversample
		{Rank: 2, Seed: 1, Accelerator: twopcp.Accelerator(99)},                   // unknown accelerator
	}
	for i, opts := range bad {
		if _, err := twopcp.Decompose(x, opts); err == nil {
			t.Fatalf("case %d (%+v): invalid accelerator options accepted", i, opts)
		}
	}
	if _, err := twopcp.ParseAccelerator("bogus"); err == nil {
		t.Fatal("ParseAccelerator accepted bogus")
	}
	for _, s := range []string{"none", "tucker", "sketched"} {
		a, err := twopcp.ParseAccelerator(s)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != s {
			t.Fatalf("round trip %q -> %q", s, a.String())
		}
	}
}

// TestAcceleratedCheckpointResume covers the accelerator identity in the
// durability layer: checkpointing an accelerated run changes nothing
// bit-for-bit, a completed run no-op resumes, and a resume whose
// accelerator options differ from the manifest is rejected.
func TestAcceleratedCheckpointResume(t *testing.T) {
	x := accelTensor(44)
	for _, tc := range accelCases() {
		t.Run(tc.name, func(t *testing.T) {
			withAccel := func(dir string) twopcp.Options {
				opts := accelOpts(tc.accel)
				opts.Checkpoint = dir
				return opts
			}
			plain, err := twopcp.Decompose(x, withAccel(""))
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(t.TempDir(), "ckpt")
			ckpt, err := twopcp.Decompose(x, withAccel(dir))
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "accel-checkpointed", ckpt, plain)

			reOpts := withAccel(dir)
			reOpts.Resume = true
			resumed, err := twopcp.Decompose(x, reOpts)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "accel-noop-resume", resumed, plain)

			// Mismatched accelerator identity is rejected.
			mismatches := []func(*twopcp.Options){
				func(o *twopcp.Options) { o.Accelerator = twopcp.AccelNone; o.Phase0Rank = 0; o.SketchOversample = 0 },
				func(o *twopcp.Options) { o.Phase0Rank = 2 },
				func(o *twopcp.Options) { o.SketchOversample = 9 },
			}
			for i, mutate := range mismatches {
				badOpts := withAccel(dir)
				badOpts.Resume = true
				mutate(&badOpts)
				if _, err := twopcp.Decompose(x, badOpts); !errors.Is(err, runstate.ErrMismatch) {
					t.Fatalf("mismatch case %d: got %v, want ErrMismatch", i, err)
				}
			}
		})
	}
}

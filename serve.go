package twopcp

import (
	"twopcp/internal/factorsnap"
	"twopcp/internal/serve"
)

// FactorModel is the interactive query engine over a decomposed model:
// cell and sub-block reconstruction, top-k scoring in a mode, and
// nearest neighbors in factor-row space. Obtain one with OpenFactorModel
// (zero-copy over a snapshot file) or build the snapshot first with
// WriteFactorSnapshot. Safe for concurrent use; queries are
// allocation-free at steady state.
type FactorModel = serve.Model

// Scored is one ranked FactorModel query result: the entity's row index
// in the queried mode plus its score (reconstructed score for TopK,
// squared Euclidean distance for NN).
type Scored = serve.Scored

// WriteFactorSnapshot serializes a decomposed model to the compact,
// versioned, mmap-able factor-snapshot format at path (written
// atomically, CRC-protected). The daemon produces the same file for
// every done job; this is the library entry point for local results.
func WriteFactorSnapshot(path string, model *KTensor) error {
	return factorsnap.Write(path, model.Lambda, model.Factors, nil)
}

// OpenFactorModel opens the factor snapshot at path as a query engine.
// On little-endian unix platforms the factors are zero-copy views over
// the mapped file; Close releases the mapping.
func OpenFactorModel(path string) (*FactorModel, error) {
	return serve.Open(path, serve.Config{})
}

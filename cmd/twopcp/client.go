// Client mode: the submit, status, watch and cancel subcommands talk to
// a running twopcpd daemon over its HTTP API (docs/API.md) instead of
// decomposing locally. Unlike the local-run mode — whose stdout is
// pinned empty — client mode writes its machine-readable output (job
// IDs, status JSON, event lines) to stdout for piping.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"twopcp/internal/jobs"
)

// clientMain dispatches one client subcommand and returns its exit code.
func clientMain(cmd string, args []string) int {
	fs := flag.NewFlagSet("twopcp "+cmd, flag.ExitOnError)
	server := fs.String("server", envOr("TWOPCP_SERVER", "http://localhost:7117"), "twopcpd base URL (default $TWOPCP_SERVER)")
	switch cmd {
	case "submit":
		var spec jobs.Spec
		in := fs.String("in", "", "tensor file (required): uploaded with -upload, otherwise submitted as a daemon-host path")
		upload := fs.Bool("upload", false, "upload the tensor bytes instead of submitting the path")
		fs.IntVar(&spec.Rank, "rank", 10, "decomposition rank F")
		fs.IntVar(&spec.Parts, "parts", 0, "partitions per mode (0 = daemon default)")
		fs.StringVar(&spec.Schedule, "schedule", "", "update schedule: MC, FO, ZO or HO (empty = daemon default)")
		fs.StringVar(&spec.Replacement, "replacement", "", "buffer replacement: LRU, MRU or FOR (empty = daemon default)")
		fs.Float64Var(&spec.BufferFraction, "buffer", 0, "buffer fraction (0 = daemon default)")
		fs.IntVar(&spec.MaxIters, "iters", 0, "max Phase-2 virtual iterations (0 = daemon default)")
		fs.Float64Var(&spec.Tol, "tol", 0, "fit-improvement stopping threshold (0 = daemon default)")
		fs.IntVar(&spec.Workers, "workers", 0, "Phase-1 parallelism (0 = daemon default)")
		fs.IntVar(&spec.PrefetchDepth, "prefetch", 0, "Phase-2 prefetch depth")
		fs.BoolVar(&spec.OutOfCore, "out-of-core", false, "keep Phase-2 data units on the daemon's disk")
		fs.StringVar(&spec.Constraint, "constraint", "", "row-update solver: none, ridge or nonneg")
		fs.Float64Var(&spec.Lambda, "lambda", 0, "ridge damping weight")
		fs.StringVar(&spec.Accelerator, "accelerator", "", "Phase-0 acceleration: none, tucker or sketched")
		fs.Int64Var(&spec.Seed, "seed", 0, "random seed (0 = daemon default)")
		fs.IntVar(&spec.CheckpointEverySteps, "checkpoint-steps", 0, "Phase-2 checkpoint cadence in schedule steps (0 = once per cycle)")
		fs.IntVar(&spec.MaxRetries, "retry", 0, "transient-fault retry budget per operation")
		fs.Parse(args)
		if *in == "" {
			fs.Usage()
			return 2
		}
		return submit(*server, spec, *in, *upload)
	case "status":
		fs.Parse(args)
		return status(*server, fs.Args())
	case "watch":
		fs.Parse(args)
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: twopcp watch [-server URL] <job-id>")
			return 2
		}
		return watch(*server, fs.Arg(0))
	case "cancel":
		fs.Parse(args)
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: twopcp cancel [-server URL] <job-id>")
			return 2
		}
		return cancel(*server, fs.Arg(0))
	}
	return 2
}

// envOr reads an environment default for a flag.
func envOr(name, fallback string) string {
	if v := os.Getenv(name); v != "" {
		return v
	}
	return fallback
}

// submit posts a job and prints its ID to stdout.
func submit(server string, spec jobs.Spec, in string, upload bool) int {
	var resp *http.Response
	var err error
	if upload {
		specJSON, merr := json.Marshal(spec)
		if merr != nil {
			log.Print(merr)
			return 1
		}
		f, oerr := os.Open(in)
		if oerr != nil {
			log.Print(oerr)
			return 1
		}
		defer f.Close()
		req, rerr := http.NewRequest("POST", server+"/v1/jobs/upload", f)
		if rerr != nil {
			log.Print(rerr)
			return 1
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(jobs.SpecHeader, string(specJSON))
		resp, err = http.DefaultClient.Do(req)
	} else {
		spec.Input = in
		body, merr := json.Marshal(spec)
		if merr != nil {
			log.Print(merr)
			return 1
		}
		resp, err = http.Post(server+"/v1/jobs", "application/json", bytes.NewReader(body))
	}
	if err != nil {
		log.Print(err)
		return 1
	}
	defer resp.Body.Close()
	var job jobs.Job
	if code := decodeOrFail(resp, http.StatusCreated, &job); code != 0 {
		return code
	}
	fmt.Fprintf(os.Stderr, "submitted %s (state %s)\n", job.ID, job.State)
	fmt.Println(job.ID)
	return 0
}

// status prints one job (or the whole list) as indented JSON on stdout.
func status(server string, ids []string) int {
	url := server + "/v1/jobs"
	if len(ids) == 1 {
		url += "/" + ids[0]
	} else if len(ids) > 1 {
		fmt.Fprintln(os.Stderr, "usage: twopcp status [-server URL] [job-id]")
		return 2
	}
	resp, err := http.Get(url)
	if err != nil {
		log.Print(err)
		return 1
	}
	defer resp.Body.Close()
	var v json.RawMessage
	if code := decodeOrFail(resp, http.StatusOK, &v); code != 0 {
		return code
	}
	os.Stdout.Write(append(bytes.TrimRight(v, "\n"), '\n'))
	return 0
}

// watch streams a job's SSE event feed, printing each event's JSON line
// to stdout until the stream ends (job reached a terminal state) or the
// connection drops.
func watch(server, id string) int {
	resp, err := http.Get(server + "/v1/jobs/" + id + "/events")
	if err != nil {
		log.Print(err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return failBody(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			fmt.Println(data)
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		log.Print(err)
		return 1
	}
	return 0
}

// cancel asks the daemon to stop a job.
func cancel(server, id string) int {
	resp, err := http.Post(server+"/v1/jobs/"+id+"/cancel", "application/json", nil)
	if err != nil {
		log.Print(err)
		return 1
	}
	defer resp.Body.Close()
	var job jobs.Job
	if code := decodeOrFail(resp, http.StatusOK, &job); code != 0 {
		return code
	}
	fmt.Fprintf(os.Stderr, "canceled %s (state %s)\n", job.ID, job.State)
	return 0
}

// decodeOrFail decodes the response body into v when the status matches,
// or prints the server's error envelope and returns a nonzero exit code.
func decodeOrFail(resp *http.Response, want int, v any) int {
	if resp.StatusCode != want {
		return failBody(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

// failBody surfaces the server's JSON error envelope on stderr.
func failBody(resp *http.Response) int {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		log.Printf("%s: %s", resp.Status, e.Error)
	} else {
		log.Printf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return 1
}

// The export-snapshot subcommand: package a completed checkpointed run's
// factors into the mmap-able factor-snapshot file the query layer
// (internal/serve, the daemon's /query routes, cmd/loadtest) serves.

package main

import (
	"flag"
	"fmt"
	"os"

	"twopcp/internal/factorsnap"
	"twopcp/internal/runstate"
)

// exportSnapshotMain reads a finished run's result checkpoint and writes
// the factor snapshot, stamped with the run's option fingerprint.
func exportSnapshotMain(args []string) int {
	fs := flag.NewFlagSet("export-snapshot", flag.ExitOnError)
	ckpt := fs.String("checkpoint", "", "completed run's checkpoint directory (required)")
	out := fs.String("out", "", "snapshot output path (required)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: twopcp export-snapshot -checkpoint <dir> -out <factors.snap>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *ckpt == "" || *out == "" {
		fs.Usage()
		return 2
	}

	st, err := runstate.ReadResult(*ckpt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "twopcp: %v\n", err)
		return 1
	}
	if len(st.Factors) == 0 {
		fmt.Fprintf(os.Stderr, "twopcp: result in %s holds no factor matrices\n", *ckpt)
		return 1
	}
	// Checkpointed factors carry λ folded in (the pipeline normalizes
	// before saving), so the exported weights are all ones — matching
	// what a resume of this run would return.
	lambda := make([]float64, st.Factors[0].Cols)
	for f := range lambda {
		lambda[f] = 1
	}
	var meta *runstate.Meta
	if mt, merr := runstate.ReadMeta(*ckpt); merr == nil {
		meta = &mt
	}
	if err := factorsnap.Write(*out, lambda, st.Factors, meta); err != nil {
		fmt.Fprintf(os.Stderr, "twopcp: %v\n", err)
		return 1
	}
	dims := make([]int, len(st.Factors))
	for n, f := range st.Factors {
		dims[n] = f.Rows
	}
	info, err := os.Stat(*out)
	size := int64(0)
	if err == nil {
		size = info.Size()
	}
	fmt.Fprintf(os.Stderr, "exported snapshot %s: dims %v rank %d (%d bytes)\n",
		*out, dims, st.Factors[0].Cols, size)
	return 0
}

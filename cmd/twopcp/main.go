// Command twopcp decomposes a tensor file with the 2PCP two-phase CP
// decomposition and reports fit, timing and I/O statistics.
//
// Usage:
//
//	twopcp -in tensor.tpdn -rank 10 [flags]
//
// The input format (dense .tpdn / sparse .tpsp / tiled .tptl) is detected
// from the file magic. Tiled inputs run fully out-of-core: Phase 1 reads
// grid blocks straight from the file, so peak memory stays bounded by the
// tile and buffer sizes rather than the tensor size (pair with -store to
// keep Phase 2 on disk too). Factor matrices can be exported with
// -out-prefix.
//
// Constrained decompositions are selected with -constraint: "ridge"
// damps every normal-equation solve with -lambda (Tikhonov), "nonneg"
// produces element-wise nonnegative factors. Both run through the same
// two-phase pipeline with the same determinism and crash-recovery
// guarantees; the constraint is part of the checkpoint fingerprint, so a
// -resume with a different -constraint or -lambda is rejected.
//
// Long runs survive crashes with -checkpoint <dir>: progress is
// checkpointed durably (per Phase-1 block, and per Phase-2 schedule step
// batch), and a killed run restarted with -resume <dir> skips completed
// work and finishes with bit-for-bit identical factors, fit trace and swap
// counts. See the README's "Crash recovery" walkthrough.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"twopcp"
	"twopcp/internal/buffer"
	"twopcp/internal/par"
	"twopcp/internal/schedule"
	"twopcp/internal/tfile"
)

// Exit codes beyond the conventional 1 (failure) / 2 (usage):
const (
	// exitDrained: the run stopped gracefully on SIGTERM/SIGINT after
	// writing a checkpoint; restart with -resume to continue bit-exactly.
	exitDrained = 3
	// exitQuarantine: Phase-1 blocks exhausted the retry budget on a
	// permanent fault; the rest of the run is checkpointed, so fixing the
	// fault and resuming recomputes only the quarantined blocks.
	exitQuarantine = 4
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("twopcp: ")

	var (
		in         = flag.String("in", "", "input tensor file (.tpdn dense or .tpsp sparse; required)")
		rank       = flag.Int("rank", 10, "decomposition rank F")
		parts      = flag.Int("parts", 2, "partitions per mode (the paper's K)")
		schedName  = flag.String("schedule", "HO", "update schedule: MC, FO, ZO or HO")
		polName    = flag.String("replacement", "FOR", "buffer replacement: LRU, MRU or FOR")
		frac       = flag.Float64("buffer", 1.0, "buffer size as a fraction of the total space requirement")
		maxIters   = flag.Int("iters", 100, "max Phase-2 virtual iterations")
		tol        = flag.Float64("tol", 1e-2, "fit-improvement stopping threshold")
		workers    = flag.Int("workers", 0, "Phase-1 parallelism (0 = GOMAXPROCS)")
		kworkers   = flag.Int("kernel-workers", 0, "intra-kernel parallelism for MTTKRP/Gram/GEMM (0 = GOMAXPROCS, 1 = serial; results are identical at every setting)")
		prefetch   = flag.Int("prefetch", 0, "Phase-2 prefetch depth in schedule steps (0 = synchronous)")
		ioWorkers  = flag.Int("io-workers", 0, "Phase-2 async I/O workers (0 = auto when -prefetch > 0)")
		storeDir   = flag.String("store", "", "directory for out-of-core data units (empty = in-memory)")
		constr     = flag.String("constraint", "none", "row-update solver: none (least squares), ridge (Tikhonov-damped, needs -lambda) or nonneg (element-wise nonnegative factors)")
		lambda     = flag.Float64("lambda", 0, "ridge damping weight (required > 0 with -constraint ridge)")
		accel      = flag.String("accelerator", "none", "Phase-0 acceleration: none, tucker (compress-then-refine warm start) or sketched (leverage-sampled row updates)")
		p0rank     = flag.Int("phase0-rank", 0, "per-mode Tucker basis rank for -accelerator tucker (0 = rank)")
		oversample = flag.Int("sketch-oversample", 0, "extra Gaussian probe columns for the tucker range finder (0 = default 5)")
		seed       = flag.Int64("seed", 1, "random seed")
		outPrefix  = flag.String("out-prefix", "", "write factor matrices to <prefix>-mode<i>.csv")
		ckptDir    = flag.String("checkpoint", "", "directory for durable run checkpoints: a killed run can be restarted with -resume and picks up where the last checkpoint left off")
		resumeDir  = flag.String("resume", "", "resume the run checkpointed in this directory (implies -checkpoint <dir>; the options must match the original run)")
		ckptSteps  = flag.Int("checkpoint-steps", 0, "Phase-2 checkpoint cadence in schedule steps (0 = once per scheduling cycle)")
		jsonOut    = flag.String("json", "", "also write the result (fit, trace, swaps, timings) as JSON to this file (- for stdout)")
		traceOut   = flag.String("trace", "", "append the structured run trace (JSONL events) to this file")
		metricsOut = flag.String("metrics", "", "write a JSON metrics-registry snapshot to this file after the run")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and a Prometheus /metrics endpoint on this address while the run executes (e.g. localhost:6060)")
		progress   = flag.Duration("progress", 0, "print a progress line (fit, sweeps, blocks, I/O, buffer hit rate) to stderr at this interval (0 = off)")
		retries    = flag.Int("retry", 0, "max retries per operation for transient store/block faults (0 = resilience layer off)")
		opTimeout  = flag.Duration("op-timeout", 0, "per-operation store deadline; slow operations fail with a retryable timeout (0 = none)")
		faultRate  = flag.Float64("fault-rate", envFloat("TWOPCP_FAULT_RATE"), "chaos testing: per-op probability of an injected transient fault on store and block reads (default $TWOPCP_FAULT_RATE)")
		faultWRate = flag.Float64("fault-write-rate", 0, "chaos testing: per-op probability of an injected transient fault on store writes")
		faultSeed  = flag.Int64("fault-seed", envInt("TWOPCP_FAULT_SEED"), "chaos testing: fault-injection RNG seed (default $TWOPCP_FAULT_SEED)")
		poison     = flag.String("fault-poison-blocks", "", "chaos testing: comma-separated Phase-1 block ids that fail permanently on every read")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	checkpoint, resume := *ckptDir, false
	if *resumeDir != "" {
		if checkpoint != "" && checkpoint != *resumeDir {
			log.Fatalf("-checkpoint %q and -resume %q name different directories", checkpoint, *resumeDir)
		}
		checkpoint, resume = *resumeDir, true
	}
	kind, err := schedule.ParseKind(*schedName)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := buffer.ParsePolicy(*polName)
	if err != nil {
		log.Fatal(err)
	}
	constraint, err := twopcp.ParseConstraint(*constr)
	if err != nil {
		log.Fatal(err)
	}
	accelerator, err := twopcp.ParseAccelerator(*accel)
	if err != nil {
		log.Fatal(err)
	}
	poisonBlocks, err := parseBlockList(*poison)
	if err != nil {
		log.Fatal(err)
	}
	opts := twopcp.Options{
		Rank:                 *rank,
		Partitions:           []int{*parts},
		Schedule:             kind,
		Replacement:          pol,
		BufferFraction:       *frac,
		MaxIters:             *maxIters,
		Tol:                  *tol,
		Workers:              *workers,
		KernelWorkers:        *kworkers,
		PrefetchDepth:        *prefetch,
		IOWorkers:            *ioWorkers,
		StoreDir:             *storeDir,
		Constraint:           constraint,
		Lambda:               *lambda,
		Accelerator:          accelerator,
		Phase0Rank:           *p0rank,
		SketchOversample:     *oversample,
		Seed:                 *seed,
		Checkpoint:           checkpoint,
		Resume:               resume,
		CheckpointEverySteps: *ckptSteps,
		Retry: twopcp.RetryPolicy{
			MaxRetries: *retries,
			OpTimeout:  *opTimeout,
			Seed:       *seed,
		},
		Chaos: twopcp.Chaos{
			ReadRate:     *faultRate,
			WriteRate:    *faultWRate,
			BlockRate:    *faultRate,
			PoisonBlocks: poisonBlocks,
			Seed:         *faultSeed,
		},
	}

	// Graceful drain: the first SIGTERM/SIGINT asks the run to finish its
	// in-flight step, write a checkpoint, and exit with code 3; a second
	// signal kills the process the usual way (the handler resets itself).
	stop := make(chan struct{})
	opts.Stop = stop
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "twopcp: received %v, draining (finishing in-flight step, writing checkpoint)\n", s)
		signal.Stop(sigc)
		close(stop)
	}()

	// Telemetry: any of -trace/-metrics/-pprof/-progress switches the
	// observer on; without them opts.Observer stays nil and the run pays
	// essentially nothing. Telemetry never influences the computation —
	// results are bit-identical either way.
	var rec *twopcp.Recorder
	var reg *twopcp.Registry
	if *traceOut != "" || *metricsOut != "" || *pprofAddr != "" || *progress > 0 {
		ob := &twopcp.Observer{}
		if *traceOut != "" {
			var err error
			rec, err = twopcp.OpenTrace(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			ob.Trace = rec
		}
		if *metricsOut != "" || *pprofAddr != "" || *progress > 0 {
			reg = twopcp.NewRegistry()
			ob.Metrics = reg
			par.SetDispatchCounter(reg.Counter("par.dispatches"))
			defer par.SetDispatchCounter(nil)
		}
		opts.Observer = ob
	}
	if *pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on
		// http.DefaultServeMux; add the Prometheus exposition beside them.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			w.Write(reg.PrometheusText())
		})
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	stopProgress := func() {}
	if *progress > 0 {
		stopProgress = startProgress(reg, *progress)
	}

	res, dims, err := decomposeFile(*in, opts)
	stopProgress()
	if rec != nil {
		if cerr := rec.Close(); cerr != nil {
			log.Printf("trace: %v", cerr)
		}
	}
	if err != nil {
		// Typed resilience outcomes get distinct exit codes so scripts can
		// tell a drained or quarantined — and therefore resumable — run
		// from a hard failure.
		var qe *twopcp.QuarantineError
		switch {
		case errors.Is(err, twopcp.ErrInterrupted):
			log.Print(err)
			os.Exit(exitDrained)
		case errors.As(err, &qe):
			log.Print(err)
			os.Exit(exitQuarantine)
		}
		log.Fatal(err)
	}
	if *metricsOut != "" {
		if err := reg.WriteSnapshot(*metricsOut); err != nil {
			log.Fatal(err)
		}
	}

	// The whole human-readable summary goes to stderr: stdout is reserved
	// for machine-parseable output (of which the CLI currently produces
	// none — results travel via -json/-out-prefix files). A regression
	// test pins stdout empty, so tools piping from twopcp stay safe.
	summary := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format, args...)
	}
	st := res.RunStats
	summary("tensor     : %v\n", dims)
	summary("rank       : %d   partitions: %d per mode\n", *rank, *parts)
	summary("schedule   : %s   replacement: %s   buffer: %.2g×total\n", kind, pol, *frac)
	if constraint != twopcp.ConstraintNone {
		if constraint == twopcp.ConstraintRidge {
			summary("constraint : %s (lambda %g)\n", constraint, *lambda)
		} else {
			summary("constraint : %s\n", constraint)
		}
	}
	if accelerator != twopcp.AccelNone {
		state := "fell back to brute force"
		if st.Accelerated {
			state = "active"
		}
		summary("accelerator: %s (%s)\n", accelerator, state)
	}
	summary("fit        : %.6f\n", res.Fit)
	if st.Phase0Time > 0 {
		summary("phase 0    : %v\n", st.Phase0Time)
	}
	summary("phase 1    : %v  (%d blocks, %d ALS sweeps)\n", st.Phase1Time, st.Blocks, st.Phase1Sweeps)
	summary("phase 2    : %v  (%d virtual iterations, converged=%v)\n",
		st.Phase2Time, res.VirtualIters, res.Converged)
	summary("data swaps : %d total, %.3f per virtual iteration (buffer hit rate %.1f%%)\n",
		st.Swaps, st.SwapsPerIter, 100*st.BufferHitRate)
	summary("store I/O  : %d bytes read, %d bytes written\n", st.BytesRead, st.BytesWritten)
	if st.Retries > 0 {
		summary("resilience : %d transient-fault retries absorbed\n", st.Retries)
	}

	if *outPrefix != "" {
		for m, f := range res.Model.Factors {
			path := fmt.Sprintf("%s-mode%d.csv", *outPrefix, m)
			if err := writeCSV(path, f); err != nil {
				log.Fatal(err)
			}
			summary("wrote %s (%d×%d)\n", path, f.Rows, f.Cols)
		}
	}
	if *jsonOut != "" {
		if err := writeResultJSON(*jsonOut, dims, res); err != nil {
			log.Fatal(err)
		}
		if *jsonOut != "-" {
			summary("wrote %s\n", *jsonOut)
		}
	}
}

// envFloat reads a float64 flag default from the environment (0 when
// unset or unparseable — the flag's own validation is the error path).
func envFloat(name string) float64 {
	v, _ := strconv.ParseFloat(os.Getenv(name), 64)
	return v
}

// envInt reads an int64 flag default from the environment.
func envInt(name string) int64 {
	v, _ := strconv.ParseInt(os.Getenv(name), 10, 64)
	return v
}

// parseBlockList parses the -fault-poison-blocks comma-separated id list.
func parseBlockList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var ids []int
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -fault-poison-blocks entry %q: %w", part, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// startProgress launches the periodic progress reporter: one stderr line
// per tick with the run's live position (Phase-1 blocks and sweeps, then
// Phase-2 fit and iterations) and I/O counters. Returns its stop func.
func startProgress(reg *twopcp.Registry, every time.Duration) func() {
	const mb = 1.0 / (1 << 20)
	blocks := reg.Counter("phase1.blocks_done")
	sweeps := reg.Counter("phase1.sweeps")
	iters := reg.Gauge("phase2.virtual_iters")
	fit := reg.Gauge("phase2.fit")
	fetches := reg.Counter("buffer.fetches")
	hits := reg.Counter("buffer.hits")
	bytesRead := reg.Counter("blockstore.bytes_read")
	bytesWritten := reg.Counter("blockstore.bytes_written")
	start := time.Now()
	report := func() {
		hitRate := 0.0
		if tot := hits.Load() + fetches.Load(); tot > 0 {
			hitRate = float64(hits.Load()) / float64(tot)
		}
		fmt.Fprintf(os.Stderr,
			"progress %8s  blocks=%d sweeps=%d  iters=%g fit=%.6f  read=%.1fMB written=%.1fMB hit=%.1f%%\n",
			time.Since(start).Round(time.Second),
			blocks.Load(), sweeps.Load(), iters.Load(), fit.Load(),
			float64(bytesRead.Load())*mb, float64(bytesWritten.Load())*mb,
			100*hitRate)
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				report()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		// One final line so even runs shorter than the tick interval leave
		// a progress record.
		report()
	}
}

// writeResultJSON records the run's deterministic outputs (plus timings)
// for tooling — the CI crash-recovery job diffs these files between an
// interrupted-and-resumed run and an uninterrupted one.
func writeResultJSON(path string, dims []int, res *twopcp.Result) error {
	out := struct {
		Dims         []int           `json:"dims"`
		Fit          float64         `json:"fit"`
		VirtualIters int             `json:"virtual_iters"`
		Converged    bool            `json:"converged"`
		FitTrace     []float64       `json:"fit_trace"`
		RunStats     twopcp.RunStats `json:"run_stats"`
	}{dims, res.Fit, res.VirtualIters, res.Converged, res.FitTrace, res.RunStats}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if path == "-" {
		// The one thing that legitimately goes to stdout: the JSON object
		// itself, with nothing around it.
		_, err := os.Stdout.Write(append(data, '\n'))
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// decomposeFile sniffs the tensor format and runs the pipeline.
func decomposeFile(path string, opts twopcp.Options) (*twopcp.Result, []int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	magic := make([]byte, 4)
	if _, err := f.Read(magic); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("read magic: %w", err)
	}
	f.Close()
	switch string(magic) {
	case tfile.Magic:
		res, err := twopcp.DecomposeTiledFile(path, opts)
		if err != nil {
			return nil, nil, err
		}
		dims := make([]int, len(res.Model.Factors))
		for m, f := range res.Model.Factors {
			dims[m] = f.Rows
		}
		return res, dims, nil
	case "TPDN":
		x, err := twopcp.LoadDense(path)
		if err != nil {
			return nil, nil, err
		}
		res, err := twopcp.Decompose(x, opts)
		return res, x.Dims, err
	case "TPSP":
		x, err := twopcp.LoadCOO(path)
		if err != nil {
			return nil, nil, err
		}
		res, err := twopcp.DecomposeSparse(x, opts)
		return res, x.Dims, err
	default:
		return nil, nil, fmt.Errorf("unrecognized tensor magic %q (want TPDN, TPSP or TPTL)", magic)
	}
}

func writeCSV(path string, m *twopcp.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if _, err := fmt.Fprint(f, ","); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(f, "%g", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(f); err != nil {
			return err
		}
	}
	return f.Close()
}

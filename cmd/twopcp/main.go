// Command twopcp decomposes a tensor file with the 2PCP two-phase CP
// decomposition and reports fit, timing and I/O statistics.
//
// Usage:
//
//	twopcp -in tensor.tpdn -rank 10 [flags]
//	twopcp submit|status|watch|cancel ...   (client mode, against twopcpd)
//	twopcp export-snapshot -checkpoint dir -out factors.snap
//
// The input format (dense .tpdn / sparse .tpsp / tiled .tptl) is detected
// from the file magic. Tiled inputs run fully out-of-core: Phase 1 reads
// grid blocks straight from the file, so peak memory stays bounded by the
// tile and buffer sizes rather than the tensor size (pair with -store to
// keep Phase 2 on disk too). Factor matrices can be exported with
// -out-prefix.
//
// Constrained decompositions are selected with -constraint: "ridge"
// damps every normal-equation solve with -lambda (Tikhonov), "nonneg"
// produces element-wise nonnegative factors. Both run through the same
// two-phase pipeline with the same determinism and crash-recovery
// guarantees; the constraint is part of the checkpoint fingerprint, so a
// -resume with a different -constraint or -lambda is rejected.
//
// Long runs survive crashes with -checkpoint <dir>: progress is
// checkpointed durably (per Phase-1 block, and per Phase-2 schedule step
// batch), and a killed run restarted with -resume <dir> skips completed
// work and finishes with bit-for-bit identical factors, fit trace and swap
// counts. See docs/crash-recovery.md.
//
// The submit, status, watch and cancel subcommands talk to a running
// twopcpd daemon instead of decomposing locally; see docs/service.md and
// docs/API.md.
//
// The export-snapshot subcommand packages a completed checkpointed run's
// factors into the mmap-able factor-snapshot format the query layer
// serves; see docs/serving.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"twopcp"
	"twopcp/internal/buffer"
	"twopcp/internal/cli"
	"twopcp/internal/schedule"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("twopcp: ")

	// Client subcommands are dispatched by the first argument; anything
	// else (including no arguments) is the classic local-run flag form.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "submit", "status", "watch", "cancel":
			os.Exit(clientMain(os.Args[1], os.Args[2:]))
		case "export-snapshot":
			os.Exit(exportSnapshotMain(os.Args[2:]))
		}
	}
	runLocal()
}

// runLocal is the classic CLI path: parse the run flags, decompose the
// input in this process, print the summary.
func runLocal() {
	var (
		in         = flag.String("in", "", "input tensor file (.tpdn dense or .tpsp sparse; required)")
		rank       = flag.Int("rank", 10, "decomposition rank F")
		parts      = flag.Int("parts", 2, "partitions per mode (the paper's K)")
		schedName  = flag.String("schedule", "HO", "update schedule: MC, FO, ZO or HO")
		polName    = flag.String("replacement", "FOR", "buffer replacement: LRU, MRU or FOR")
		frac       = flag.Float64("buffer", 1.0, "buffer size as a fraction of the total space requirement")
		maxIters   = flag.Int("iters", 100, "max Phase-2 virtual iterations")
		tol        = flag.Float64("tol", 1e-2, "fit-improvement stopping threshold")
		workers    = flag.Int("workers", 0, "Phase-1 parallelism (0 = GOMAXPROCS)")
		kworkers   = flag.Int("kernel-workers", 0, "intra-kernel parallelism for MTTKRP/Gram/GEMM (0 = GOMAXPROCS, 1 = serial; results are identical at every setting)")
		prefetch   = flag.Int("prefetch", 0, "Phase-2 prefetch depth in schedule steps (0 = synchronous)")
		ioWorkers  = flag.Int("io-workers", 0, "Phase-2 async I/O workers (0 = auto when -prefetch > 0)")
		storeDir   = flag.String("store", "", "directory for out-of-core data units (empty = in-memory)")
		constr     = flag.String("constraint", "none", "row-update solver: none (least squares), ridge (Tikhonov-damped, needs -lambda) or nonneg (element-wise nonnegative factors)")
		lambda     = flag.Float64("lambda", 0, "ridge damping weight (required > 0 with -constraint ridge)")
		accel      = flag.String("accelerator", "none", "Phase-0 acceleration: none, tucker (compress-then-refine warm start) or sketched (leverage-sampled row updates)")
		p0rank     = flag.Int("phase0-rank", 0, "per-mode Tucker basis rank for -accelerator tucker (0 = rank)")
		oversample = flag.Int("sketch-oversample", 0, "extra Gaussian probe columns for the tucker range finder (0 = default 5)")
		seed       = flag.Int64("seed", 1, "random seed")
		outPrefix  = flag.String("out-prefix", "", "write factor matrices to <prefix>-mode<i>.csv")
		ckptDir    = flag.String("checkpoint", "", "directory for durable run checkpoints: a killed run can be restarted with -resume and picks up where the last checkpoint left off")
		resumeDir  = flag.String("resume", "", "resume the run checkpointed in this directory (implies -checkpoint <dir>; the options must match the original run)")
		ckptSteps  = flag.Int("checkpoint-steps", 0, "Phase-2 checkpoint cadence in schedule steps (0 = once per scheduling cycle)")
		jsonOut    = flag.String("json", "", "also write the result (fit, trace, swaps, timings) as JSON to this file (- for stdout)")
		traceOut   = flag.String("trace", "", "append the structured run trace (JSONL events) to this file")
		metricsOut = flag.String("metrics", "", "write a JSON metrics-registry snapshot to this file after the run")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and a Prometheus /metrics endpoint on this address while the run executes (e.g. localhost:6060)")
		progress   = flag.Duration("progress", 0, "print a progress line (fit, sweeps, blocks, I/O, buffer hit rate) to stderr at this interval (0 = off)")
		retries    = flag.Int("retry", 0, "max retries per operation for transient store/block faults (0 = resilience layer off)")
		opTimeout  = flag.Duration("op-timeout", 0, "per-operation store deadline; slow operations fail with a retryable timeout (0 = none)")
		faultRate  = flag.Float64("fault-rate", cli.EnvFloat("TWOPCP_FAULT_RATE"), "chaos testing: per-op probability of an injected transient fault on store and block reads (default $TWOPCP_FAULT_RATE)")
		faultWRate = flag.Float64("fault-write-rate", 0, "chaos testing: per-op probability of an injected transient fault on store writes")
		faultSeed  = flag.Int64("fault-seed", cli.EnvInt("TWOPCP_FAULT_SEED"), "chaos testing: fault-injection RNG seed (default $TWOPCP_FAULT_SEED)")
		poison     = flag.String("fault-poison-blocks", "", "chaos testing: comma-separated Phase-1 block ids that fail permanently on every read")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	checkpoint, resume := *ckptDir, false
	if *resumeDir != "" {
		if checkpoint != "" && checkpoint != *resumeDir {
			log.Fatalf("-checkpoint %q and -resume %q name different directories", checkpoint, *resumeDir)
		}
		checkpoint, resume = *resumeDir, true
	}
	kind, err := schedule.ParseKind(*schedName)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := buffer.ParsePolicy(*polName)
	if err != nil {
		log.Fatal(err)
	}
	constraint, err := twopcp.ParseConstraint(*constr)
	if err != nil {
		log.Fatal(err)
	}
	accelerator, err := twopcp.ParseAccelerator(*accel)
	if err != nil {
		log.Fatal(err)
	}
	poisonBlocks, err := parseBlockList(*poison)
	if err != nil {
		log.Fatal(err)
	}
	opts := twopcp.Options{
		Rank:                 *rank,
		Partitions:           []int{*parts},
		Schedule:             kind,
		Replacement:          pol,
		BufferFraction:       *frac,
		MaxIters:             *maxIters,
		Tol:                  *tol,
		Workers:              *workers,
		KernelWorkers:        *kworkers,
		PrefetchDepth:        *prefetch,
		IOWorkers:            *ioWorkers,
		StoreDir:             *storeDir,
		Constraint:           constraint,
		Lambda:               *lambda,
		Accelerator:          accelerator,
		Phase0Rank:           *p0rank,
		SketchOversample:     *oversample,
		Seed:                 *seed,
		Checkpoint:           checkpoint,
		Resume:               resume,
		CheckpointEverySteps: *ckptSteps,
		Retry: twopcp.RetryPolicy{
			MaxRetries: *retries,
			OpTimeout:  *opTimeout,
			Seed:       *seed,
		},
		Chaos: twopcp.Chaos{
			ReadRate:     *faultRate,
			WriteRate:    *faultWRate,
			BlockRate:    *faultRate,
			PoisonBlocks: poisonBlocks,
			Seed:         *faultSeed,
		},
	}

	// Graceful drain: the first SIGTERM/SIGINT asks the run to finish its
	// in-flight step, write a checkpoint, and exit with code 3; a second
	// signal kills the process the usual way (the handler resets itself).
	opts.Stop = cli.InstallDrain("twopcp")

	// Telemetry: any of -trace/-metrics/-pprof/-progress switches the
	// observer on; without them opts.Observer stays nil and the run pays
	// essentially nothing. Telemetry never influences the computation —
	// results are bit-identical either way.
	tel, err := cli.Telemetry{
		TracePath:   *traceOut,
		MetricsPath: *metricsOut,
		PprofAddr:   *pprofAddr,
		Progress:    *progress,
	}.Start()
	if err != nil {
		log.Fatal(err)
	}
	opts.Observer = tel.Observer

	res, dims, err := twopcp.DecomposeFile(*in, opts)
	if cerr := tel.Close(); cerr != nil {
		log.Printf("telemetry: %v", cerr)
	}
	if err != nil {
		// Typed resilience outcomes get distinct exit codes so scripts can
		// tell a drained or quarantined — and therefore resumable — run
		// from a hard failure.
		log.Print(err)
		os.Exit(cli.ExitCode(err))
	}

	// The whole human-readable summary goes to stderr: stdout is reserved
	// for machine-parseable output (of which the CLI currently produces
	// none — results travel via -json/-out-prefix files). A regression
	// test pins stdout empty, so tools piping from twopcp stay safe.
	summary := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format, args...)
	}
	st := res.RunStats
	summary("tensor     : %v\n", dims)
	summary("rank       : %d   partitions: %d per mode\n", *rank, *parts)
	summary("schedule   : %s   replacement: %s   buffer: %.2g×total\n", kind, pol, *frac)
	if constraint != twopcp.ConstraintNone {
		if constraint == twopcp.ConstraintRidge {
			summary("constraint : %s (lambda %g)\n", constraint, *lambda)
		} else {
			summary("constraint : %s\n", constraint)
		}
	}
	if accelerator != twopcp.AccelNone {
		state := "fell back to brute force"
		if st.Accelerated {
			state = "active"
		}
		summary("accelerator: %s (%s)\n", accelerator, state)
	}
	summary("fit        : %.6f\n", res.Fit)
	if st.Phase0Time > 0 {
		summary("phase 0    : %v\n", st.Phase0Time)
	}
	summary("phase 1    : %v  (%d blocks, %d ALS sweeps)\n", st.Phase1Time, st.Blocks, st.Phase1Sweeps)
	summary("phase 2    : %v  (%d virtual iterations, converged=%v)\n",
		st.Phase2Time, res.VirtualIters, res.Converged)
	summary("data swaps : %d total, %.3f per virtual iteration (buffer hit rate %.1f%%)\n",
		st.Swaps, st.SwapsPerIter, 100*st.BufferHitRate)
	summary("store I/O  : %d bytes read, %d bytes written\n", st.BytesRead, st.BytesWritten)
	if st.Retries > 0 {
		summary("resilience : %d transient-fault retries absorbed\n", st.Retries)
	}

	if *outPrefix != "" {
		for m, f := range res.Model.Factors {
			path := fmt.Sprintf("%s-mode%d.csv", *outPrefix, m)
			if err := cli.WriteFactorCSV(path, f); err != nil {
				log.Fatal(err)
			}
			summary("wrote %s (%d×%d)\n", path, f.Rows, f.Cols)
		}
	}
	if *jsonOut != "" {
		if err := writeResultJSON(*jsonOut, dims, res); err != nil {
			log.Fatal(err)
		}
		if *jsonOut != "-" {
			summary("wrote %s\n", *jsonOut)
		}
	}
}

// parseBlockList parses the -fault-poison-blocks comma-separated id list.
func parseBlockList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var ids []int
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -fault-poison-blocks entry %q: %w", part, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// writeResultJSON records the run's deterministic outputs (plus timings)
// for tooling — the CI crash-recovery job diffs these files between an
// interrupted-and-resumed run and an uninterrupted one.
func writeResultJSON(path string, dims []int, res *twopcp.Result) error {
	out := struct {
		Dims         []int           `json:"dims"`
		Fit          float64         `json:"fit"`
		VirtualIters int             `json:"virtual_iters"`
		Converged    bool            `json:"converged"`
		FitTrace     []float64       `json:"fit_trace"`
		RunStats     twopcp.RunStats `json:"run_stats"`
	}{dims, res.Fit, res.VirtualIters, res.Converged, res.FitTrace, res.RunStats}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if path == "-" {
		// The one thing that legitimately goes to stdout: the JSON object
		// itself, with nothing around it.
		_, err := os.Stdout.Write(append(data, '\n'))
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

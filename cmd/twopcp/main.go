// Command twopcp decomposes a tensor file with the 2PCP two-phase CP
// decomposition and reports fit, timing and I/O statistics.
//
// Usage:
//
//	twopcp -in tensor.tpdn -rank 10 [flags]
//
// The input format (dense .tpdn / sparse .tpsp / tiled .tptl) is detected
// from the file magic. Tiled inputs run fully out-of-core: Phase 1 reads
// grid blocks straight from the file, so peak memory stays bounded by the
// tile and buffer sizes rather than the tensor size (pair with -store to
// keep Phase 2 on disk too). Factor matrices can be exported with
// -out-prefix.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"twopcp"
	"twopcp/internal/buffer"
	"twopcp/internal/schedule"
	"twopcp/internal/tfile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("twopcp: ")

	var (
		in        = flag.String("in", "", "input tensor file (.tpdn dense or .tpsp sparse; required)")
		rank      = flag.Int("rank", 10, "decomposition rank F")
		parts     = flag.Int("parts", 2, "partitions per mode (the paper's K)")
		schedName = flag.String("schedule", "HO", "update schedule: MC, FO, ZO or HO")
		polName   = flag.String("replacement", "FOR", "buffer replacement: LRU, MRU or FOR")
		frac      = flag.Float64("buffer", 1.0, "buffer size as a fraction of the total space requirement")
		maxIters  = flag.Int("iters", 100, "max Phase-2 virtual iterations")
		tol       = flag.Float64("tol", 1e-2, "fit-improvement stopping threshold")
		workers   = flag.Int("workers", 0, "Phase-1 parallelism (0 = GOMAXPROCS)")
		kworkers  = flag.Int("kernel-workers", 0, "intra-kernel parallelism for MTTKRP/Gram/GEMM (0 = GOMAXPROCS, 1 = serial; results are identical at every setting)")
		prefetch  = flag.Int("prefetch", 0, "Phase-2 prefetch depth in schedule steps (0 = synchronous)")
		ioWorkers = flag.Int("io-workers", 0, "Phase-2 async I/O workers (0 = auto when -prefetch > 0)")
		storeDir  = flag.String("store", "", "directory for out-of-core data units (empty = in-memory)")
		seed      = flag.Int64("seed", 1, "random seed")
		outPrefix = flag.String("out-prefix", "", "write factor matrices to <prefix>-mode<i>.csv")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	kind, err := schedule.ParseKind(*schedName)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := buffer.ParsePolicy(*polName)
	if err != nil {
		log.Fatal(err)
	}
	opts := twopcp.Options{
		Rank:           *rank,
		Partitions:     []int{*parts},
		Schedule:       kind,
		Replacement:    pol,
		BufferFraction: *frac,
		MaxIters:       *maxIters,
		Tol:            *tol,
		Workers:        *workers,
		KernelWorkers:  *kworkers,
		PrefetchDepth:  *prefetch,
		IOWorkers:      *ioWorkers,
		StoreDir:       *storeDir,
		Seed:           *seed,
	}

	res, dims, err := decomposeFile(*in, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tensor     : %v\n", dims)
	fmt.Printf("rank       : %d   partitions: %d per mode\n", *rank, *parts)
	fmt.Printf("schedule   : %s   replacement: %s   buffer: %.2g×total\n", kind, pol, *frac)
	fmt.Printf("fit        : %.6f\n", res.Fit)
	fmt.Printf("phase 1    : %v\n", res.Phase1Time)
	fmt.Printf("phase 2    : %v  (%d virtual iterations, converged=%v)\n",
		res.Phase2Time, res.VirtualIters, res.Converged)
	fmt.Printf("data swaps : %d total, %.3f per virtual iteration\n", res.Swaps, res.SwapsPerIter)
	fmt.Printf("store I/O  : %d bytes read, %d bytes written\n", res.BytesRead, res.BytesWritten)

	if *outPrefix != "" {
		for m, f := range res.Model.Factors {
			path := fmt.Sprintf("%s-mode%d.csv", *outPrefix, m)
			if err := writeCSV(path, f); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s (%d×%d)\n", path, f.Rows, f.Cols)
		}
	}
}

// decomposeFile sniffs the tensor format and runs the pipeline.
func decomposeFile(path string, opts twopcp.Options) (*twopcp.Result, []int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	magic := make([]byte, 4)
	if _, err := f.Read(magic); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("read magic: %w", err)
	}
	f.Close()
	switch string(magic) {
	case tfile.Magic:
		res, err := twopcp.DecomposeTiledFile(path, opts)
		if err != nil {
			return nil, nil, err
		}
		dims := make([]int, len(res.Model.Factors))
		for m, f := range res.Model.Factors {
			dims[m] = f.Rows
		}
		return res, dims, nil
	case "TPDN":
		x, err := twopcp.LoadDense(path)
		if err != nil {
			return nil, nil, err
		}
		res, err := twopcp.Decompose(x, opts)
		return res, x.Dims, err
	case "TPSP":
		x, err := twopcp.LoadCOO(path)
		if err != nil {
			return nil, nil, err
		}
		res, err := twopcp.DecomposeSparse(x, opts)
		return res, x.Dims, err
	default:
		return nil, nil, fmt.Errorf("unrecognized tensor magic %q (want TPDN, TPSP or TPTL)", magic)
	}
}

func writeCSV(path string, m *twopcp.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if _, err := fmt.Fprint(f, ","); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(f, "%g", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(f); err != nil {
			return err
		}
	}
	return f.Close()
}

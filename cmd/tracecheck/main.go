// Command tracecheck validates a twopcp run trace (the JSONL file written
// by twopcp -trace) against the event schema: every line must be a known
// event carrying exactly its declared fields with the declared types.
//
// Usage:
//
//	tracecheck trace.jsonl [more.jsonl ...]
//	twopcp -in x.tptl -rank 8 -trace /dev/stdout | tracecheck -
//
// It prints a per-file event census to stderr and exits non-zero on the
// first schema violation, so CI can gate on it.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"twopcp/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.jsonl>... (or - for stdin)")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		var r io.Reader
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			r = f
		}
		if err := checkTrace(path, r); err != nil {
			log.Fatal(err)
		}
	}
}

// checkTrace validates every line of one trace stream and reports the
// event census.
func checkTrace(name string, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	counts := map[string]int{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := obs.ValidateLine(line); err != nil {
			return fmt.Errorf("%s:%d: %v", name, lineNo, err)
		}
		counts[eventName(line)]++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	if lineNo == 0 {
		return fmt.Errorf("%s: empty trace", name)
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "%s: %d events OK\n", name, lineNo)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %-18s %d\n", n, counts[n])
	}
	return nil
}

// eventName extracts the event name from a line ValidateLine accepted.
// The recorder always writes "ev" first, so the fast path is a prefix
// slice; anything else falls back to a JSON decode.
func eventName(line []byte) string {
	const prefix = `{"ev":"`
	if bytes.HasPrefix(line, []byte(prefix)) {
		rest := line[len(prefix):]
		if i := bytes.IndexByte(rest, '"'); i >= 0 {
			return string(rest[:i])
		}
	}
	var m struct {
		Ev string `json:"ev"`
	}
	json.Unmarshal(line, &m)
	return m.Ev
}

// Command tracecheck validates a twopcp run trace (the JSONL file written
// by twopcp -trace) against the event schema: every line must be a known
// event carrying exactly its declared fields with the declared types.
//
// Usage:
//
//	tracecheck trace.jsonl [more.jsonl ...]
//	tracecheck -run-stats result.json trace.jsonl
//	twopcp -in x.tptl -rank 8 -trace /dev/stdout | tracecheck -
//
// It prints a per-file event census to stderr and exits non-zero on the
// first schema violation, so CI can gate on it.
//
// With -run-stats pointing at a twopcp -json result file, it additionally
// reconciles the resilience telemetry: the total number of store.retry
// events across all given trace files must equal run_stats.retries. The
// check assumes trace and result came from a single process run — a trace
// file spanning a crash and resume accumulates retry events from every
// attempt, while the result reports only the final logical run's counter.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"twopcp/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	runStats := flag.String("run-stats", "", "twopcp -json result file; assert its run_stats.retries equals the store.retry event count across the given traces (single-process traces only)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-run-stats result.json] <trace.jsonl>... (or - for stdin)")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	totalRetries := 0
	for _, path := range flag.Args() {
		var r io.Reader
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			r = f
		}
		n, err := checkTrace(path, r)
		if err != nil {
			log.Fatal(err)
		}
		totalRetries += n
	}
	if *runStats != "" {
		if err := reconcileRetries(*runStats, totalRetries); err != nil {
			log.Fatal(err)
		}
	}
}

// reconcileRetries asserts the resilience invariant: every retry the run
// counted appears as a store.retry trace event, and vice versa.
func reconcileRetries(path string, traced int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var res struct {
		RunStats struct {
			Retries int `json:"retries"`
		} `json:"run_stats"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if res.RunStats.Retries != traced {
		return fmt.Errorf("retry reconciliation failed: run_stats.retries=%d but traces carry %d store.retry events",
			res.RunStats.Retries, traced)
	}
	fmt.Fprintf(os.Stderr, "retries reconcile: run_stats.retries=%d == %d store.retry events\n",
		res.RunStats.Retries, traced)
	return nil
}

// checkTrace validates every line of one trace stream, reports the event
// census, and returns the file's store.retry event count for the
// -run-stats reconciliation.
func checkTrace(name string, r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	counts := map[string]int{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := obs.ValidateLine(line); err != nil {
			return 0, fmt.Errorf("%s:%d: %v", name, lineNo, err)
		}
		counts[eventName(line)]++
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("%s: %v", name, err)
	}
	if lineNo == 0 {
		return 0, fmt.Errorf("%s: empty trace", name)
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "%s: %d events OK\n", name, lineNo)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %-18s %d\n", n, counts[n])
	}
	return counts["store.retry"], nil
}

// eventName extracts the event name from a line ValidateLine accepted.
// The recorder always writes "ev" first, so the fast path is a prefix
// slice; anything else falls back to a JSON decode.
func eventName(line []byte) string {
	const prefix = `{"ev":"`
	if bytes.HasPrefix(line, []byte(prefix)) {
		rest := line[len(prefix):]
		if i := bytes.IndexByte(rest, '"'); i >= 0 {
			return string(rest[:i])
		}
	}
	var m struct {
		Ev string `json:"ev"`
	}
	json.Unmarshal(line, &m)
	return m.Ev
}

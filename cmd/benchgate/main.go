// Command benchgate is the CI perf-regression gate: it parses `go test
// -bench` output, compares it against the committed BENCH_*.json baselines
// and fails (exit 1) when a gated metric regresses beyond the tolerance.
//
// Usage:
//
//	benchgate [-baseline-dir .] [-tolerance 0.25] [-absolute] \
//	          [-out bench_results.json] bench-log [bench-log...]
//
// -tolerance is only the default: a baseline file may pin a different
// tolerance for any gate it backs via a top-level
//
//	"gate_tolerances": { "<gate-name>": 0.10, ... }
//
// object, so noisy ratios can run looser and tight invariants tighter
// without widening every other gate on the runner. The effective
// tolerance of each gate is recorded in the -out report.
//
// Two modes:
//
//   - Relative (default): gates machine-independent quantities — the
//     prefetch pipeline's speedup over the synchronous engine, the tiled
//     Phase-1 overhead versus in-memory, the ALS workspace allocation
//     count and its speed relative to the fresh path, the swap-count
//     invariance of the prefetch pipeline, and the Phase-0 sketch
//     acceleration (warm-start speedup over brute-force Phase 1, fit
//     parity, and the cost of a structural fallback). These hold on any
//     hardware, so
//     CI runners can enforce them even though the committed ns/op numbers
//     were recorded elsewhere.
//   - Absolute (-absolute): additionally compares raw ns/op against the
//     baselines' recorded values with the same tolerance. Only meaningful
//     on hardware comparable to the machine that recorded the baselines;
//     use it when refreshing BENCH_*.json.
//
// The evaluation (every gate, measured vs limit, pass/fail) is written to
// -out as JSON for CI artifact upload.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// measurement is one parsed benchmark result line.
type measurement struct {
	NsPerOp     float64
	AllocsPerOp float64
	hasAllocs   bool
	// Metrics holds custom b.ReportMetric units (swaps, MB/s, ...).
	Metrics map[string]float64
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

// parseBenchOutput collects benchmark lines from r's content, keyed by
// benchmark name (the trailing -GOMAXPROCS is stripped). Repeated runs of
// the same benchmark (from -count > 1) keep the minimum ns/op — the
// conventional "best of" that filters scheduling noise — and the maximum
// allocs/op (pessimistic for a regression gate).
func parseBenchOutput(content string) map[string]*measurement {
	out := make(map[string]*measurement)
	sc := bufio.NewScanner(strings.NewReader(content))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		fields := strings.Fields(m[3])
		cur := out[name]
		if cur == nil {
			cur = &measurement{NsPerOp: math.Inf(1), Metrics: map[string]float64{}}
			out[name] = cur
		}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				if v < cur.NsPerOp {
					cur.NsPerOp = v
				}
			case "allocs/op":
				if !cur.hasAllocs || v > cur.AllocsPerOp {
					cur.AllocsPerOp = v
					cur.hasAllocs = true
				}
			case "B/op":
				// not gated
			default:
				cur.Metrics[unit] = v
			}
		}
	}
	// Drop degenerate entries (a line without ns/op would poison ratios
	// and cannot be marshaled).
	for name, m := range out {
		if math.IsInf(m.NsPerOp, 0) {
			delete(out, name)
		}
	}
	return out
}

// gate is one evaluated check.
type gate struct {
	Name     string  `json:"name"`
	Measured float64 `json:"measured"`
	Limit    float64 `json:"limit"`
	Baseline float64 `json:"baseline"`
	// Tolerance is the relative slack this gate ran with: the baseline
	// file's gate_tolerances override when present, else the -tolerance
	// flag. Zero for gates whose limit is a fixed acceptance bound.
	Tolerance float64 `json:"tolerance,omitempty"`
	Pass      bool    `json:"pass"`
	Detail    string  `json:"detail,omitempty"`
	Skipped   bool    `json:"skipped,omitempty"`
}

type report struct {
	Tolerance float64                 `json:"tolerance"`
	Absolute  bool                    `json:"absolute"`
	Gates     []gate                  `json:"gates"`
	Raw       map[string]*measurement `json:"raw"`
	Pass      bool                    `json:"pass"`
}

// digFloat walks a decoded JSON tree by key path; the final element may be
// a number or an array of numbers (reduced to the median).
func digFloat(root any, path ...string) (float64, bool) {
	cur := root
	for _, key := range path {
		m, ok := cur.(map[string]any)
		if !ok {
			return 0, false
		}
		cur, ok = m[key]
		if !ok {
			return 0, false
		}
	}
	switch v := cur.(type) {
	case float64:
		return v, true
	case []any:
		vals := make([]float64, 0, len(v))
		for _, e := range v {
			f, ok := e.(float64)
			if !ok {
				return 0, false
			}
			vals = append(vals, f)
		}
		if len(vals) == 0 {
			return 0, false
		}
		sort.Float64s(vals)
		return vals[len(vals)/2], true
	}
	return 0, false
}

// gateTol resolves the tolerance for one gate: the baseline file's
// "gate_tolerances" override when present, the command-line default
// otherwise.
func gateTol(root any, name string, def float64) float64 {
	if v, ok := digFloat(root, "gate_tolerances", name); ok {
		return v
	}
	return def
}

func loadJSON(dir, name string) (any, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	var root any
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return root, nil
}

// evaluate runs every gate the measurements and baselines support.
func evaluate(meas map[string]*measurement, baselineDir string, tol float64, absolute bool) ([]gate, error) {
	var gates []gate
	add := func(g gate) { gates = append(gates, g) }
	missing := func(name, what string) {
		add(gate{Name: name, Skipped: true, Pass: true, Detail: "missing " + what})
	}

	// --- Prefetch pipeline (BENCH_phase2_prefetch.json) ---
	if pf, err := loadJSON(baselineDir, "BENCH_phase2_prefetch.json"); err == nil {
		sync, okS := meas["BenchmarkPhase2Prefetch/sync"]
		pre, okP := meas["BenchmarkPhase2Prefetch/prefetch"]
		baseSpeedup, okB := digFloat(pf, "speedup")
		if okS && okP && okB {
			speedup := sync.NsPerOp / pre.NsPerOp
			gtol := gateTol(pf, "phase2-prefetch-speedup", tol)
			limit := baseSpeedup * (1 - gtol)
			add(gate{
				Name: "phase2-prefetch-speedup", Measured: speedup, Baseline: baseSpeedup,
				Limit: limit, Tolerance: gtol, Pass: speedup >= limit,
				Detail: fmt.Sprintf("sync %.0f ns/op vs prefetch %.0f ns/op; must stay >= %.2fx", sync.NsPerOp, pre.NsPerOp, limit),
			})
			if s1, ok1 := sync.Metrics["swaps"]; ok1 {
				if s2, ok2 := pre.Metrics["swaps"]; ok2 {
					add(gate{
						Name: "phase2-prefetch-swap-invariance", Measured: s2, Baseline: s1,
						Limit: s1, Pass: s1 == s2,
						Detail: "prefetching must not change the swap count",
					})
				}
			}
			if ck, okC := meas["BenchmarkPhase2Prefetch/prefetch+checkpoint"]; okC {
				overhead := ck.NsPerOp/pre.NsPerOp - 1
				baseOverhead, _ := digFloat(pf, "checkpoint_overhead")
				// 5% is the acceptance criterion for the true overhead; the
				// margin (default 3%, overridable via gate_tolerances)
				// absorbs shared-runner jitter on a ratio of two ~90 ms
				// wall-clock timings (run the benchmark with -count >= 3 —
				// the parser keeps the min of each side, which is what
				// makes this margin sufficient).
				margin := gateTol(pf, "phase2-checkpoint-overhead", 0.03)
				limit := 0.05 + margin
				add(gate{
					Name: "phase2-checkpoint-overhead", Measured: overhead, Baseline: baseOverhead,
					Limit: limit, Tolerance: margin, Pass: overhead <= limit,
					Detail: fmt.Sprintf("prefetch %.0f ns/op vs +checkpoint %.0f ns/op; durable checkpoints must cost <= 5%% (+%.0f%% measurement margin)", pre.NsPerOp, ck.NsPerOp, margin*100),
				})
			}
			if absolute {
				for name, m := range map[string]*measurement{"sync": sync, "prefetch": pre} {
					base, ok := digFloat(pf, "results", name, "ns_per_op")
					if !ok {
						continue
					}
					gname := "phase2-prefetch-abs-ns/" + name
					gtol := gateTol(pf, gname, tol)
					limit := base * (1 + gtol)
					add(gate{
						Name: gname, Measured: m.NsPerOp, Tolerance: gtol,
						Baseline: base, Limit: limit, Pass: m.NsPerOp <= limit,
					})
				}
			}
		} else {
			missing("phase2-prefetch-speedup", "BenchmarkPhase2Prefetch sync/prefetch measurements")
		}
	} else {
		missing("phase2-prefetch-speedup", "BENCH_phase2_prefetch.json")
	}

	// --- Tiled Phase 1 (BENCH_phase1_tiled.json) ---
	if tf, err := loadJSON(baselineDir, "BENCH_phase1_tiled.json"); err == nil {
		mem, okM := meas["BenchmarkPhase1Tiled/InMemory"]
		tiled, okT := meas["BenchmarkPhase1Tiled/Tiled"]
		if okM && okT {
			baseOverhead, _ := digFloat(tf, "overhead")
			overhead := tiled.NsPerOp/mem.NsPerOp - 1
			gtol := gateTol(tf, "phase1-tiled-overhead", tol)
			limit := baseOverhead + gtol
			add(gate{
				Name: "phase1-tiled-overhead", Measured: overhead, Baseline: baseOverhead,
				Limit: limit, Tolerance: gtol, Pass: overhead <= limit,
				Detail: fmt.Sprintf("tiled %.0f ns/op vs in-memory %.0f ns/op; overhead must stay <= %.0f%%", tiled.NsPerOp, mem.NsPerOp, limit*100),
			})
			if absolute {
				for name, pair := range map[string]*measurement{"in_memory": mem, "tiled": tiled} {
					base, ok := digFloat(tf, "results", name, "ns_per_op")
					if !ok {
						continue
					}
					gname := "phase1-tiled-abs-ns/" + name
					gtol := gateTol(tf, gname, tol)
					limit := base * (1 + gtol)
					add(gate{
						Name: gname, Measured: pair.NsPerOp, Tolerance: gtol,
						Baseline: base, Limit: limit, Pass: pair.NsPerOp <= limit,
					})
				}
			}
		} else {
			missing("phase1-tiled-overhead", "BenchmarkPhase1Tiled measurements")
		}
	} else {
		missing("phase1-tiled-overhead", "BENCH_phase1_tiled.json")
	}

	// --- ALS workspace kernels (BENCH_kernels.json) ---
	if kf, err := loadJSON(baselineDir, "BENCH_kernels.json"); err == nil {
		fresh, okF := meas["BenchmarkALSSweep/fresh"]
		ws, okW := meas["BenchmarkALSSweep/workspace"]
		if okF && okW {
			if baseAllocs, ok := digFloat(kf, "benchmarks", "ALSSweep_dense_64x64x64_rank16_2sweeps", "new_workspace", "allocs_per_op"); ok && ws.hasAllocs {
				gtol := gateTol(kf, "als-workspace-allocs", tol)
				limit := math.Ceil(baseAllocs * (1 + gtol))
				add(gate{
					Name: "als-workspace-allocs", Measured: ws.AllocsPerOp, Baseline: baseAllocs,
					Limit: limit, Tolerance: gtol, Pass: ws.AllocsPerOp <= limit,
					Detail: "allocation count is hardware-independent; a rise means per-sweep scratch regressed",
				})
			}
			gtol := gateTol(kf, "als-workspace-vs-fresh", tol)
			limit := fresh.NsPerOp * (1 + gtol)
			add(gate{
				Name: "als-workspace-vs-fresh", Measured: ws.NsPerOp, Baseline: fresh.NsPerOp,
				Limit: limit, Tolerance: gtol, Pass: ws.NsPerOp <= limit,
				Detail: "the reusable workspace must never be slower than fresh allocation",
			})
			if nn, okN := meas["BenchmarkALSSweep/nonneg"]; okN {
				// The constrained-solver acceptance bound: a nonnegative
				// (HALS) ALS sweep must cost at most 2× the unconstrained
				// workspace sweep. The ratio is machine-independent (both
				// sides run the same MTTKRP/Gram kernels; only the row
				// solve differs), so it is gated on every runner. The
				// recorded baseline is informational.
				overhead := nn.NsPerOp / ws.NsPerOp
				baseOverhead, _ := digFloat(kf, "benchmarks", "ALSSweep_dense_64x64x64_rank16_2sweeps", "nonneg", "overhead_vs_workspace")
				const nnLimit = 2.0
				add(gate{
					Name: "als-nonneg-overhead", Measured: overhead, Baseline: baseOverhead,
					Limit: nnLimit, Pass: overhead <= nnLimit,
					Detail: fmt.Sprintf("nonneg %.0f ns/op vs workspace %.0f ns/op; constrained sweeps must cost <= 2x unconstrained", nn.NsPerOp, ws.NsPerOp),
				})
			}
			if absolute {
				if base, ok := digFloat(kf, "benchmarks", "ALSSweep_dense_64x64x64_rank16_2sweeps", "new_workspace", "ns_per_op"); ok {
					gtol := gateTol(kf, "als-workspace-abs-ns", tol)
					limit := base * (1 + gtol)
					add(gate{
						Name: "als-workspace-abs-ns", Measured: ws.NsPerOp, Tolerance: gtol,
						Baseline: base, Limit: limit, Pass: ws.NsPerOp <= limit,
					})
				}
			}
		} else {
			missing("als-workspace", "BenchmarkALSSweep measurements")
		}
	} else {
		missing("als-workspace", "BENCH_kernels.json")
	}

	// --- Telemetry overhead (BENCH_obs.json) ---
	if of, err := loadJSON(baselineDir, "BENCH_obs.json"); err == nil {
		off, okO := meas["BenchmarkObsOverhead/off"]
		ctr, okC := meas["BenchmarkObsOverhead/counters"]
		if okO && okC {
			overhead := ctr.NsPerOp/off.NsPerOp - 1
			baseOverhead, _ := digFloat(of, "counters_overhead")
			// 2% is the acceptance criterion for a live metrics registry on
			// the in-memory engine; the margin (default 10%, overridable via
			// gate_tolerances) absorbs shared-runner jitter on a ratio of
			// two ~2 ms wall-clock timings (run with -count >= 3 — the
			// parser keeps the min of each side).
			margin := gateTol(of, "obs-counters-overhead", 0.10)
			limit := 0.02 + margin
			add(gate{
				Name: "obs-counters-overhead", Measured: overhead, Baseline: baseOverhead,
				Limit: limit, Tolerance: margin, Pass: overhead <= limit,
				Detail: fmt.Sprintf("off %.0f ns/op vs counters %.0f ns/op; live metrics must cost <= 2%% (+%.0f%% measurement margin)", off.NsPerOp, ctr.NsPerOp, margin*100),
			})
			if baseAllocs, ok := digFloat(of, "results", "off", "allocs_per_op"); ok && off.hasAllocs {
				// Allocation counts are deterministic, so the disabled
				// observer's allocs/op gate runs tight: any allocation added
				// to the nil-observer path shows up here exactly.
				gtol := gateTol(of, "obs-off-allocs", tol)
				limit := math.Ceil(baseAllocs * (1 + gtol))
				add(gate{
					Name: "obs-off-allocs", Measured: off.AllocsPerOp, Baseline: baseAllocs,
					Limit: limit, Tolerance: gtol, Pass: off.AllocsPerOp <= limit,
					Detail: "a nil observer must not allocate; a rise means telemetry leaked into the disabled path",
				})
			}
			if tr, okT := meas["BenchmarkObsOverhead/trace"]; okT {
				overhead := tr.NsPerOp/off.NsPerOp - 1
				baseOverhead, _ := digFloat(of, "trace_overhead")
				// Tracing is opt-in, so its bound is the recorded baseline
				// plus tolerance rather than a fixed acceptance — the gate
				// catches an encoder regression, not a policy limit.
				gtol := gateTol(of, "obs-trace-overhead", tol)
				limit := baseOverhead + gtol
				add(gate{
					Name: "obs-trace-overhead", Measured: overhead, Baseline: baseOverhead,
					Limit: limit, Tolerance: gtol, Pass: overhead <= limit,
					Detail: fmt.Sprintf("off %.0f ns/op vs trace %.0f ns/op; full event tracing must stay within %.0f%% of the recorded overhead", off.NsPerOp, tr.NsPerOp, gtol*100),
				})
			}
			if s1, ok1 := off.Metrics["swaps"]; ok1 {
				if s2, ok2 := ctr.Metrics["swaps"]; ok2 {
					add(gate{
						Name: "obs-swap-invariance", Measured: s2, Baseline: s1,
						Limit: s1, Pass: s1 == s2,
						Detail: "telemetry must not change the swap count",
					})
				}
			}
		} else {
			missing("obs-counters-overhead", "BenchmarkObsOverhead off/counters measurements")
		}
	} else {
		missing("obs-counters-overhead", "BENCH_obs.json")
	}

	// --- Resilience-layer overhead (BENCH_resilience.json) ---
	if rf, err := loadJSON(baselineDir, "BENCH_resilience.json"); err == nil {
		off, okO := meas["BenchmarkResilienceOverhead/off"]
		ret, okR := meas["BenchmarkResilienceOverhead/retry"]
		if okO && okR {
			overhead := ret.NsPerOp/off.NsPerOp - 1
			baseOverhead, _ := digFloat(rf, "retry_overhead")
			// 2% is the acceptance criterion for the armed-but-idle retry
			// layer (wrapper fast path, zero faults) on the in-memory
			// engine; the margin absorbs shared-runner jitter on a ratio of
			// two wall-clock timings, exactly like obs-counters-overhead.
			margin := gateTol(rf, "resilience-overhead", 0.10)
			limit := 0.02 + margin
			add(gate{
				Name: "resilience-overhead", Measured: overhead, Baseline: baseOverhead,
				Limit: limit, Tolerance: margin, Pass: overhead <= limit,
				Detail: fmt.Sprintf("off %.0f ns/op vs retry %.0f ns/op; the idle retry layer must cost <= 2%% (+%.0f%% measurement margin)", off.NsPerOp, ret.NsPerOp, margin*100),
			})
			if s1, ok1 := off.Metrics["swaps"]; ok1 {
				if s2, ok2 := ret.Metrics["swaps"]; ok2 {
					add(gate{
						Name: "resilience-swap-invariance", Measured: s2, Baseline: s1,
						Limit: s1, Pass: s1 == s2,
						Detail: "the retry layer must not change the swap count",
					})
				}
			}
		} else {
			missing("resilience-overhead", "BenchmarkResilienceOverhead off/retry measurements")
		}
	} else {
		missing("resilience-overhead", "BENCH_resilience.json")
	}

	// --- Phase-0 sketch acceleration (BENCH_phase0_sketch.json) ---
	if sf, err := loadJSON(baselineDir, "BENCH_phase0_sketch.json"); err == nil {
		if lm, ok := meas["BenchmarkPhase0Sketch/lowmlrank"]; ok {
			speedup, okS := lm.Metrics["speedup-x"]
			delta, okD := lm.Metrics["fit-delta"]
			baseSpeedup, okB := digFloat(sf, "speedup")
			if okS && okB {
				// The acceptance criterion is the 3x floor; the baseline
				// bound on top catches a regression from the recorded
				// speedup long before it erodes down to the floor. The
				// speedup of a warm start over cold ALS swings more
				// between runs than a pure kernel ratio (iteration counts
				// quantize), so this gate's tolerance lives in the
				// baseline file rather than inheriting the CLI default.
				gtol := gateTol(sf, "phase0-sketch-speedup", tol)
				limit := math.Max(3.0, baseSpeedup*(1-gtol))
				add(gate{
					Name: "phase0-sketch-speedup", Measured: speedup, Baseline: baseSpeedup,
					Limit: limit, Tolerance: gtol, Pass: speedup >= limit,
					Detail: fmt.Sprintf("phase0+phase1 vs brute phase1; must stay >= max(3x acceptance floor, %.1fx)", limit),
				})
			} else {
				missing("phase0-sketch-speedup", "speedup-x metric or baseline speedup")
			}
			if okD {
				baseDelta, _ := digFloat(sf, "fit_delta")
				const limit = 1e-3 // acceptance criterion: |fit_accel - fit_brute|
				add(gate{
					Name: "phase0-sketch-fit-delta", Measured: delta, Baseline: baseDelta,
					Limit: limit, Pass: delta <= limit,
					Detail: "the warm start must not change the converged fit beyond 1e-3",
				})
			}
		} else {
			missing("phase0-sketch-speedup", "BenchmarkPhase0Sketch/lowmlrank measurement")
		}
		brute, okB := meas["BenchmarkPhase0Sketch/fallback-brute"]
		fb, okF := meas["BenchmarkPhase0Sketch/fallback-accel"]
		if okB && okF {
			overhead := fb.NsPerOp/brute.NsPerOp - 1
			baseOverhead, _ := digFloat(sf, "fallback_overhead")
			// 5% is the acceptance criterion; the margin absorbs runner
			// jitter on a ratio of two full pipeline runs (the structural
			// fallback itself is decided from the dims alone, before any
			// block is read, so the true overhead is near zero).
			margin := gateTol(sf, "phase0-fallback-overhead", 0.03)
			limit := 0.05 + margin
			add(gate{
				Name: "phase0-fallback-overhead", Measured: overhead, Baseline: baseOverhead,
				Limit: limit, Tolerance: margin, Pass: overhead <= limit,
				Detail: fmt.Sprintf("accel-requested fallback %.0f ns/op vs brute %.0f ns/op; must cost <= 5%% (+%.0f%% measurement margin)", fb.NsPerOp, brute.NsPerOp, margin*100),
			})
		} else {
			missing("phase0-fallback-overhead", "BenchmarkPhase0Sketch fallback measurements")
		}
	} else {
		missing("phase0-sketch-speedup", "BENCH_phase0_sketch.json")
	}

	// --- Factor serving (BENCH_serve.json) ---
	if sv, err := loadJSON(baselineDir, "BENCH_serve.json"); err == nil {
		if pr, ok := meas["BenchmarkPointRead"]; ok {
			// The acceptance criterion is the roadmap's interactive-latency
			// bar: >= 1M single-cell reconstructs/sec on one core, i.e.
			// <= 1000 ns per point read. The bound is fixed (not
			// baseline-relative) — ~10x headroom over the recorded ns/op
			// absorbs runner variance, so the gate holds on any CI box.
			basePoint, _ := digFloat(sv, "results", "point_read", "ns_per_op")
			const pointLimit = 1000.0
			add(gate{
				Name: "serve-point-read-rate", Measured: pr.NsPerOp, Baseline: basePoint,
				Limit: pointLimit, Pass: pr.NsPerOp <= pointLimit,
				Detail: fmt.Sprintf("point read %.0f ns/op = %.2fM reconstructs/sec; must sustain >= 1M/sec (<= 1000 ns/op)", pr.NsPerOp, 1e3/pr.NsPerOp),
			})
			if baseAllocs, ok := digFloat(sv, "results", "point_read", "allocs_per_op"); ok && pr.hasAllocs {
				// The baseline records 0, so the ceil'd limit stays 0 for
				// any tolerance: one allocation on the steady-state read
				// path fails the gate exactly.
				gtol := gateTol(sv, "serve-point-read-allocs", tol)
				limit := math.Ceil(baseAllocs * (1 + gtol))
				add(gate{
					Name: "serve-point-read-allocs", Measured: pr.AllocsPerOp, Baseline: baseAllocs,
					Limit: limit, Tolerance: gtol, Pass: pr.AllocsPerOp <= limit,
					Detail: "steady-state point reads must not allocate; a rise means the workspace pool or row cache leaked",
				})
			}
			if absolute && basePoint > 0 {
				gtol := gateTol(sv, "serve-point-read-abs-ns", tol)
				limit := basePoint * (1 + gtol)
				add(gate{
					Name: "serve-point-read-abs-ns", Measured: pr.NsPerOp, Tolerance: gtol,
					Baseline: basePoint, Limit: limit, Pass: pr.NsPerOp <= limit,
				})
			}
		} else {
			missing("serve-point-read-rate", "BenchmarkPointRead measurement")
		}
		if tk, ok := meas["BenchmarkTopK"]; ok {
			if baseAllocs, ok := digFloat(sv, "results", "topk", "allocs_per_op"); ok && tk.hasAllocs {
				gtol := gateTol(sv, "serve-topk-allocs", tol)
				limit := math.Ceil(baseAllocs * (1 + gtol))
				add(gate{
					Name: "serve-topk-allocs", Measured: tk.AllocsPerOp, Baseline: baseAllocs,
					Limit: limit, Tolerance: gtol, Pass: tk.AllocsPerOp <= limit,
					Detail: "top-k sweeps reuse the caller's result slice and the pooled heap; a rise means the partial sort regressed",
				})
			}
			if absolute {
				if base, ok := digFloat(sv, "results", "topk", "ns_per_op"); ok {
					gtol := gateTol(sv, "serve-topk-abs-ns", tol)
					limit := base * (1 + gtol)
					add(gate{
						Name: "serve-topk-abs-ns", Measured: tk.NsPerOp, Tolerance: gtol,
						Baseline: base, Limit: limit, Pass: tk.NsPerOp <= limit,
					})
				}
			}
		} else {
			missing("serve-topk-allocs", "BenchmarkTopK measurement")
		}
	} else {
		missing("serve-point-read-rate", "BENCH_serve.json")
	}

	return gates, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	var (
		baselineDir = flag.String("baseline-dir", ".", "directory holding the committed BENCH_*.json baselines")
		tolerance   = flag.Float64("tolerance", 0.25, "default allowed relative regression before a gate fails; baselines override per gate via gate_tolerances")
		absolute    = flag.Bool("absolute", false, "also gate raw ns/op against the recorded baselines (baseline-hardware only)")
		out         = flag.String("out", "", "write the full evaluation as JSON to this file (CI artifact)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: benchgate [flags] bench-log [bench-log...]")
	}

	meas := make(map[string]*measurement)
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		for name, m := range parseBenchOutput(string(data)) {
			meas[name] = m
		}
	}
	if len(meas) == 0 {
		log.Fatal("no benchmark result lines found in the given logs")
	}

	gates, err := evaluate(meas, *baselineDir, *tolerance, *absolute)
	if err != nil {
		log.Fatal(err)
	}
	rep := report{Tolerance: *tolerance, Absolute: *absolute, Gates: gates, Raw: meas, Pass: true}
	for _, g := range gates {
		status := "PASS"
		if g.Skipped {
			status = "SKIP"
		} else if !g.Pass {
			status = "FAIL"
			rep.Pass = false
		}
		fmt.Printf("%-4s %-32s measured=%.4g limit=%.4g baseline=%.4g %s\n",
			status, g.Name, g.Measured, g.Limit, g.Baseline, g.Detail)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if !rep.Pass {
		log.Fatal("perf gate failed")
	}
}

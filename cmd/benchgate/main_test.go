package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: twopcp/internal/refine
BenchmarkPhase2Prefetch/sync-2         	      10	181770968 ns/op	        34.00 swaps
BenchmarkPhase2Prefetch/prefetch-2     	      10	 87090878 ns/op	        34.00 swaps
BenchmarkPhase2Prefetch/prefetch+checkpoint-2     	      10	 88000000 ns/op	        34.00 swaps
BenchmarkPhase1Tiled/InMemory-2        	       5	 44944373 ns/op	        19.69 MB/s	         3.852 peakHeap-MB
BenchmarkPhase1Tiled/Tiled-2           	       5	 45664951 ns/op	        19.38 MB/s	         3.710 peakHeap-MB
BenchmarkALSSweep/fresh-2              	       3	  9771654 ns/op	   53150 B/op	      41 allocs/op
BenchmarkALSSweep/workspace-2          	       3	  9655172 ns/op	   26938 B/op	      20 allocs/op
BenchmarkPhase0Sketch/lowmlrank-2      	       1	721677487 ns/op	         0.0004354 fit-delta	        21.59 speedup-x
BenchmarkPhase0Sketch/fallback-brute-2 	       1	  9748907 ns/op
BenchmarkPhase0Sketch/fallback-accel-2 	       1	  9556311 ns/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	meas := parseBenchOutput(sampleLog)
	if len(meas) != 10 {
		t.Fatalf("parsed %d benchmarks, want 10", len(meas))
	}
	sync := meas["BenchmarkPhase2Prefetch/sync"]
	if sync == nil || sync.NsPerOp != 181770968 {
		t.Fatalf("sync = %+v", sync)
	}
	if sync.Metrics["swaps"] != 34 {
		t.Fatalf("sync swaps = %v", sync.Metrics["swaps"])
	}
	ws := meas["BenchmarkALSSweep/workspace"]
	if !ws.hasAllocs || ws.AllocsPerOp != 20 {
		t.Fatalf("workspace allocs = %+v", ws)
	}
	if meas["BenchmarkPhase1Tiled/Tiled"].Metrics["peakHeap-MB"] != 3.710 {
		t.Fatal("custom metric lost")
	}
}

func TestParseKeepsBestOfRepeatedRuns(t *testing.T) {
	log := `BenchmarkX/a-8   10   200 ns/op   7 allocs/op
BenchmarkX/a-8   10   100 ns/op   9 allocs/op
`
	meas := parseBenchOutput(log)
	m := meas["BenchmarkX/a"]
	if m.NsPerOp != 100 {
		t.Fatalf("ns/op = %v, want min 100", m.NsPerOp)
	}
	if m.AllocsPerOp != 9 {
		t.Fatalf("allocs/op = %v, want max 9", m.AllocsPerOp)
	}
}

// writeBaselines drops minimal BENCH_*.json files matching the committed
// schemas into dir.
func writeBaselines(t *testing.T, dir string) {
	t.Helper()
	files := map[string]any{
		"BENCH_phase2_prefetch.json": map[string]any{
			"speedup": 2.08,
			"results": map[string]any{
				"sync":     map[string]any{"ns_per_op": []float64{181770968}},
				"prefetch": map[string]any{"ns_per_op": []float64{87090878}},
			},
		},
		"BENCH_phase1_tiled.json": map[string]any{
			"overhead": 0.03,
			"results": map[string]any{
				"in_memory": map[string]any{"ns_per_op": []float64{44944373}},
				"tiled":     map[string]any{"ns_per_op": []float64{45664951}},
			},
		},
		"BENCH_kernels.json": map[string]any{
			"benchmarks": map[string]any{
				"ALSSweep_dense_64x64x64_rank16_2sweeps": map[string]any{
					"new_workspace": map[string]any{"ns_per_op": 9655172.0, "allocs_per_op": 20.0},
				},
			},
		},
		"BENCH_phase0_sketch.json": map[string]any{
			"speedup":           21.59,
			"fit_delta":         0.00044,
			"fallback_overhead": 0.0,
			"gate_tolerances":   map[string]any{"phase0-sketch-speedup": 0.5},
		},
	}
	for name, content := range files {
		data, err := json.Marshal(content)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func gateByName(gates []gate, name string) *gate {
	for i := range gates {
		if gates[i].Name == name {
			return &gates[i]
		}
	}
	return nil
}

func TestGatesPassOnBaselineNumbers(t *testing.T) {
	dir := t.TempDir()
	writeBaselines(t, dir)
	meas := parseBenchOutput(sampleLog)
	gates, err := evaluate(meas, dir, 0.25, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gates {
		if !g.Pass {
			t.Errorf("gate %s failed on baseline-identical numbers: %+v", g.Name, g)
		}
	}
	for _, want := range []string{
		"phase2-prefetch-speedup", "phase2-prefetch-swap-invariance",
		"phase2-checkpoint-overhead",
		"phase1-tiled-overhead", "als-workspace-allocs", "als-workspace-vs-fresh",
		"phase2-prefetch-abs-ns/sync", "phase1-tiled-abs-ns/tiled", "als-workspace-abs-ns",
		"phase0-sketch-speedup", "phase0-sketch-fit-delta", "phase0-fallback-overhead",
	} {
		if gateByName(gates, want) == nil {
			t.Errorf("gate %s missing", want)
		}
	}
}

// TestPerGateTolerance: a baseline's gate_tolerances entry overrides the
// CLI default for exactly that gate, in both directions.
func TestPerGateTolerance(t *testing.T) {
	dir := t.TempDir()
	writeBaselines(t, dir)

	// 13x against a 21.59x baseline: dead under the default 25% tolerance
	// (limit 16.2x), alive under the baseline's 50% override (limit 10.8x).
	log := `BenchmarkPhase0Sketch/lowmlrank-2   1  721677487 ns/op   0.0004 fit-delta   13.0 speedup-x`
	gates, err := evaluate(parseBenchOutput(log), dir, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	g := gateByName(gates, "phase0-sketch-speedup")
	if g == nil || !g.Pass {
		t.Fatalf("override to 0.5 should pass 13x: %+v", g)
	}
	if g.Tolerance != 0.5 {
		t.Fatalf("gate ran at tolerance %v, want the baseline's 0.5", g.Tolerance)
	}

	// Tighten the same gate below the measurement: now it must fail, and
	// the other baselines' gates must be untouched by the override.
	tight := map[string]any{
		"speedup":         21.59,
		"gate_tolerances": map[string]any{"phase0-sketch-speedup": 0.1},
	}
	data, err := json.Marshal(tight)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_phase0_sketch.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	gates, err = evaluate(parseBenchOutput(sampleLog+log), dir, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if g := gateByName(gates, "phase0-sketch-speedup"); g == nil || g.Pass {
		t.Fatalf("tolerance 0.1 (limit 19.4x) should fail 13x: %+v", g)
	}
	if g := gateByName(gates, "phase2-prefetch-speedup"); g == nil || !g.Pass || g.Tolerance != 0.25 {
		t.Fatalf("unrelated gate should keep the CLI default tolerance: %+v", g)
	}
}

func TestGatesCatchRegressions(t *testing.T) {
	dir := t.TempDir()
	writeBaselines(t, dir)

	// Prefetch speedup collapses to ~1x.
	slow := `BenchmarkPhase2Prefetch/sync-2   10  181770968 ns/op  34.0 swaps
BenchmarkPhase2Prefetch/prefetch-2   10  180000000 ns/op  34.0 swaps
`
	gates, err := evaluate(parseBenchOutput(slow), dir, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if g := gateByName(gates, "phase2-prefetch-speedup"); g == nil || g.Pass {
		t.Errorf("speedup collapse not caught: %+v", g)
	}

	// Checkpoint overhead blowing past the 5% acceptance limit.
	heavy := `BenchmarkPhase2Prefetch/sync-2   10  181770968 ns/op  34.0 swaps
BenchmarkPhase2Prefetch/prefetch-2   10  87090878 ns/op  34.0 swaps
BenchmarkPhase2Prefetch/prefetch+checkpoint-2   10  95000000 ns/op  34.0 swaps
`
	gates, err = evaluate(parseBenchOutput(heavy), dir, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if g := gateByName(gates, "phase2-checkpoint-overhead"); g == nil || g.Pass {
		t.Errorf("checkpoint overhead not caught: %+v", g)
	}

	// Swap counts drifting between sync and prefetch.
	drift := `BenchmarkPhase2Prefetch/sync-2   10  181770968 ns/op  34.0 swaps
BenchmarkPhase2Prefetch/prefetch-2   10  87090878 ns/op  36.0 swaps
`
	gates, err = evaluate(parseBenchOutput(drift), dir, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if g := gateByName(gates, "phase2-prefetch-swap-invariance"); g == nil || g.Pass {
		t.Errorf("swap drift not caught: %+v", g)
	}

	// Tiled overhead blowing past in-memory.
	fat := `BenchmarkPhase1Tiled/InMemory-2   5  44944373 ns/op
BenchmarkPhase1Tiled/Tiled-2   5  60000000 ns/op
`
	gates, err = evaluate(parseBenchOutput(fat), dir, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if g := gateByName(gates, "phase1-tiled-overhead"); g == nil || g.Pass {
		t.Errorf("tiled overhead not caught: %+v", g)
	}

	// Workspace allocation regression.
	leaky := `BenchmarkALSSweep/fresh-2   3  9771654 ns/op  41 allocs/op
BenchmarkALSSweep/workspace-2   3  9655172 ns/op  131 allocs/op
`
	gates, err = evaluate(parseBenchOutput(leaky), dir, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if g := gateByName(gates, "als-workspace-allocs"); g == nil || g.Pass {
		t.Errorf("alloc regression not caught: %+v", g)
	}

	// Phase-0 speedup eroding below the 3x acceptance floor, the warm
	// start bending the converged fit, and a fallback that got expensive.
	accel := `BenchmarkPhase0Sketch/lowmlrank-2   1  721677487 ns/op   0.002 fit-delta   2.5 speedup-x
BenchmarkPhase0Sketch/fallback-brute-2   1  9748907 ns/op
BenchmarkPhase0Sketch/fallback-accel-2   1  11000000 ns/op
`
	gates, err = evaluate(parseBenchOutput(accel), dir, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if g := gateByName(gates, "phase0-sketch-speedup"); g == nil || g.Pass {
		t.Errorf("phase0 speedup collapse not caught: %+v", g)
	}
	if g := gateByName(gates, "phase0-sketch-fit-delta"); g == nil || g.Pass {
		t.Errorf("phase0 fit drift not caught: %+v", g)
	}
	if g := gateByName(gates, "phase0-fallback-overhead"); g == nil || g.Pass {
		t.Errorf("phase0 fallback overhead not caught: %+v", g)
	}
}

func TestMissingInputsSkipNotFail(t *testing.T) {
	dir := t.TempDir() // no baseline files at all
	gates, err := evaluate(parseBenchOutput(sampleLog), dir, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gates {
		if !g.Skipped || !g.Pass {
			t.Errorf("gate %s should skip without baselines: %+v", g.Name, g)
		}
	}
}

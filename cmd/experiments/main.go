// Command experiments regenerates the tables and figures of the 2PCP paper
// (ICDE 2016, §VIII) at a configurable scale.
//
// Usage:
//
//	experiments [flags] table1|fig11|table2|table3|fig12|fig13|convergence|accel|all
//
// Default sizes are scaled down from the paper's billion-scale runs so a
// full regeneration finishes in minutes on a laptop; -scale moves them
// back up (e.g. -scale 4 quadruples tensor sides). See EXPERIMENTS.md for
// recorded paper-vs-measured results.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"twopcp"
	"twopcp/internal/experiments"
	"twopcp/internal/par"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		scale      = flag.Int("scale", 1, "size multiplier toward paper scale")
		seed       = flag.Int64("seed", 1, "random seed")
		runs       = flag.Int("runs", 3, "repetitions for Figure 13 medians")
		prefetch   = flag.Int("prefetch", 0, "Phase-2 prefetch depth in schedule steps (0 = synchronous; counts are depth-invariant)")
		ioWorkers  = flag.Int("io-workers", 0, "Phase-2 async I/O workers (0 = auto when -prefetch > 0)")
		kworkers   = flag.Int("kernel-workers", 0, "intra-kernel parallelism for MTTKRP/Gram/GEMM (0 = GOMAXPROCS, 1 = serial; results are identical at every setting)")
		ckptDir    = flag.String("checkpoint", "", "directory for durable run checkpoints (one subdirectory per experiment run; honored by the convergence experiment)")
		resume     = flag.Bool("resume", false, "resume runs previously checkpointed under -checkpoint")
		constr     = flag.String("constraint", "none", "row-update solver for the convergence experiment: none, ridge (needs -lambda) or nonneg")
		lambda     = flag.Float64("lambda", 0, "ridge damping weight (with -constraint ridge)")
		traceOut   = flag.String("trace", "", "append the structured run trace (JSONL events) of every engine run to this file")
		metricsOut = flag.String("metrics", "", "write a JSON metrics-registry snapshot to this file after the experiments finish")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and a Prometheus /metrics endpoint on this address while the experiments run")
	)
	flag.Parse()
	if *kworkers > 0 {
		par.SetWorkers(*kworkers)
	}
	if *resume && *ckptDir == "" {
		log.Fatal("-resume requires -checkpoint")
	}
	ioCfg := experiments.IO{
		PrefetchDepth: *prefetch, IOWorkers: *ioWorkers,
		Checkpoint: *ckptDir, Resume: *resume,
	}
	// Graceful drain on SIGTERM/SIGINT: the in-flight engine run finishes
	// its step and checkpoints (when -checkpoint is set); the process exits
	// with code 3 so scripts can tell a drain from a failure. A second
	// signal kills the process the usual way.
	stop := make(chan struct{})
	ioCfg.Stop = stop
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "experiments: received %v, draining\n", s)
		signal.Stop(sigc)
		close(stop)
	}()
	var rec *twopcp.Recorder
	var reg *twopcp.Registry
	if *traceOut != "" || *metricsOut != "" || *pprofAddr != "" {
		ob := &twopcp.Observer{}
		if *traceOut != "" {
			var err error
			rec, err = twopcp.OpenTrace(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			ob.Trace = rec
			defer func() {
				if err := rec.Close(); err != nil {
					log.Printf("trace: %v", err)
				}
			}()
		}
		if *metricsOut != "" || *pprofAddr != "" {
			reg = twopcp.NewRegistry()
			ob.Metrics = reg
			par.SetDispatchCounter(reg.Counter("par.dispatches"))
			defer par.SetDispatchCounter(nil)
			if *metricsOut != "" {
				defer func() {
					if err := reg.WriteSnapshot(*metricsOut); err != nil {
						log.Printf("metrics: %v", err)
					}
				}()
			}
		}
		ioCfg.Observer = ob
	}
	if *pprofAddr != "" {
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			w.Write(reg.PrometheusText())
		})
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] table1|fig11|table2|table3|fig12|fig13|convergence|accel|all")
		os.Exit(2)
	}
	which := flag.Arg(0)
	run := func(name string, f func() error) {
		if which != name && which != "all" {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			if errors.Is(err, experiments.ErrStopped) {
				// Drained on SIGTERM/SIGINT: checkpoint (if any) is written;
				// exit 3 distinguishes the resumable drain from a failure.
				log.Printf("%s: %v", name, err)
				os.Exit(3)
			}
			log.Fatalf("%s: %v", name, err)
		}
		// Progress/timing chatter goes to stderr; stdout carries only the
		// tables and figures themselves, so they can be piped or diffed.
		fmt.Fprintf(os.Stderr, "(%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	var table1 *experiments.Table1Result
	run("table1", func() error {
		cfg := experiments.Table1Config{
			Sides: []int{32 * *scale, 48 * *scale, 64 * *scale},
			Seed:  *seed,
			IO:    ioCfg,
		}
		// The reducer cap scales with the workload so the largest side
		// exceeds it, as in the paper.
		cfg.HaTen2MemoryBytes = int64(700<<10) * int64(*scale) * int64(*scale) * int64(*scale)
		res, err := experiments.RunTable1(cfg)
		if err != nil {
			return err
		}
		table1 = res
		fmt.Print(res)
		return nil
	})

	run("fig11", func() error {
		if table1 == nil {
			res, err := experiments.RunTable1(experiments.Table1Config{
				Sides:             []int{24 * *scale, 32 * *scale, 48 * *scale, 64 * *scale},
				Seed:              *seed,
				HaTen2MemoryBytes: 1 << 40, // fig11 only needs the 2PCP series
				IO:                ioCfg,
			})
			if err != nil {
				return err
			}
			table1 = res
		}
		fmt.Print(experiments.FormatFigure11(experiments.Figure11(table1)))
		return nil
	})

	run("table2", func() error {
		res, err := experiments.RunTable2(experiments.Table2Config{
			Side: 128 * *scale,
			Seed: *seed,
			IO:   ioCfg,
		})
		if err != nil {
			return err
		}
		fmt.Print(res)
		return nil
	})

	run("table3", func() error {
		fmt.Print(experiments.DefaultParamGrid())
		return nil
	})

	run("fig12", func() error {
		res, err := experiments.RunFigure12(experiments.Figure12Config{Seed: *seed, IO: ioCfg})
		if err != nil {
			return err
		}
		fmt.Print(res)
		return nil
	})

	run("accel", func() error {
		res, err := experiments.RunAccel(experiments.AccelConfig{
			Side: 24 * *scale, MLRank: 4, Rank: 8, Noise: 1e-5, Diag: true, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(res)
		return nil
	})

	run("convergence", func() error {
		res, err := experiments.RunConvergence(experiments.ConvergenceConfig{
			Seed: *seed, IO: ioCfg, Constraint: *constr, Lambda: *lambda,
		})
		if err != nil {
			return err
		}
		fmt.Print(res)
		return nil
	})

	run("fig13", func() error {
		for _, iters := range []int{100, 200} {
			res, err := experiments.RunFigure13(experiments.Figure13Config{
				MaxVirtualIters: iters,
				Runs:            *runs,
				Seed:            *seed,
				IO:              ioCfg,
			})
			if err != nil {
				return err
			}
			fmt.Print(res)
			fmt.Println()
		}
		return nil
	})
}

package main

import (
	"math/rand"
	"path/filepath"
	"testing"

	"twopcp"
	"twopcp/internal/datasets"
)

// TestStreamLowMLRankMatchesInMemory checks that the tiled streaming
// path reproduces LowMLRankSpec.Generate bit for bit when noise is off
// (noise streams intentionally differ: streaming seeds them per tile).
func TestStreamLowMLRankMatchesInMemory(t *testing.T) {
	const seed = 7
	dims := []int{20, 18, 16}
	spec := datasets.LowMLRankSpec{R: 3, Diag: true}

	want := spec.Generate(rand.New(rand.NewSource(seed)), dims...)

	path := filepath.Join(t.TempDir(), "a.tptl")
	streamLowMLRank(path, dims, []int{3, 2, 2}, spec, seed, rand.New(rand.NewSource(seed)), false)
	got, err := twopcp.LoadTiled(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("streamed tile data diverges at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestStreamLowMLRankNoiseDeterministic checks that the per-tile noise
// seeding makes streamed output independent of everything but the seed
// and tiling.
func TestStreamLowMLRankNoiseDeterministic(t *testing.T) {
	const seed = 9
	dims := []int{16, 16, 16}
	spec := datasets.LowMLRankSpec{R: 4, Noise: 1e-3, Collinearity: 0.5}
	load := func(name string) *twopcp.Dense {
		path := filepath.Join(t.TempDir(), name)
		streamLowMLRank(path, dims, []int{2, 2, 2}, spec, seed, rand.New(rand.NewSource(seed)), false)
		x, err := twopcp.LoadTiled(path)
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	a, b := load("a.tptl"), load("b.tptl")
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("same seed produced different streamed tensors at %d", i)
		}
	}
}

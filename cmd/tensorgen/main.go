// Command tensorgen generates the synthetic tensors used by the 2PCP
// experiments and examples, in the twopcp binary formats.
//
// Usage:
//
//	tensorgen -kind dense -dims 100x100x100 -density 0.2 -out t.tpdn
//	tensorgen -kind epinions -out epinions.tpsp
//	tensorgen -kind lowrank -dims 2000x2000x2000 -tiles 8 -out big.tptl
//	tensorgen -kind lowmlrank -dims 48x48x48 -mlrank 4 -diag -noise 1e-5 -out accel.tpdn
//
// Kinds: dense (uniform dense cube, -dims/-density), lowrank (-dims,
// -rank, -noise), lowmlrank (random Tucker core × orthonormal factors,
// -dims, -mlrank, -noise, -diag, -collinearity — the Phase-0
// accelerator's target inputs), epinions, ciao, enron (paper-shaped
// sparse stand-ins), face (-scale), ensemble (-dims).
//
// When -out ends in .tptl the tensor is written in the tiled out-of-core
// format. For the dense, lowrank and lowmlrank kinds generation then
// streams tile by tile — only one tile is ever resident — so test
// tensors larger than RAM can be produced. -tiles sets the tiles per
// mode (a single value broadcasts; default picks tiles of at most
// 32 MiB) and -gzip compresses the tiles.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"twopcp"
	"twopcp/internal/cpals"
	"twopcp/internal/datasets"
	"twopcp/internal/mat"
	"twopcp/internal/tensor"
	"twopcp/internal/tfile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tensorgen: ")

	var (
		kind     = flag.String("kind", "dense", "dense|lowrank|lowmlrank|epinions|ciao|enron|face|ensemble")
		dimsStr  = flag.String("dims", "64x64x64", "mode sizes, e.g. 100x100x100")
		density  = flag.Float64("density", 0.2, "nonzero density (dense kind)")
		rank     = flag.Int("rank", 5, "true rank (lowrank kind)")
		noise    = flag.Float64("noise", 0.01, "noise level: additive (lowrank) or relative (lowmlrank)")
		mlrank   = flag.Int("mlrank", 4, "multilinear rank per mode (lowmlrank kind)")
		diag     = flag.Bool("diag", false, "superdiagonal Tucker core: CP rank exactly -mlrank (lowmlrank kind)")
		collin   = flag.Float64("collinearity", 0, "pairwise factor-column inner product in [0,1) (lowmlrank kind)")
		scale    = flag.Int("scale", 10, "downscale factor (face kind)")
		tilesStr = flag.String("tiles", "", "tiles per mode for .tptl output, e.g. 4x4x4 or 4 (default: auto)")
		gz       = flag.Bool("gzip", false, "gzip-compress .tptl tiles")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output file (required; .tpdn, .tpsp or .tptl)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seed))
	tiled := strings.HasSuffix(*out, ".tptl")

	switch *kind {
	case "dense":
		dims := parseDims(*dimsStr)
		if tiled {
			streamDense(*out, dims, tileCounts(*tilesStr, dims), *density, *seed, *gz)
			return
		}
		x := datasets.DenseUniform(rng, *density, dims...)
		save(*out, x, nil, *tilesStr, *gz)
	case "lowrank":
		dims := parseDims(*dimsStr)
		if tiled {
			streamLowrank(*out, dims, tileCounts(*tilesStr, dims), *rank, *noise, *seed, rng, *gz)
			return
		}
		factors := make([]*mat.Matrix, len(dims))
		for m, d := range dims {
			factors[m] = mat.Random(d, *rank, rng)
		}
		x := cpals.NewKTensor(factors).Full()
		if *noise > 0 {
			for i := range x.Data {
				x.Data[i] += *noise * rng.NormFloat64()
			}
		}
		save(*out, x, nil, *tilesStr, *gz)
	case "lowmlrank":
		dims := parseDims(*dimsStr)
		spec := datasets.LowMLRankSpec{R: *mlrank, Noise: *noise, Diag: *diag, Collinearity: *collin}
		if tiled {
			streamLowMLRank(*out, dims, tileCounts(*tilesStr, dims), spec, *seed, rng, *gz)
			return
		}
		save(*out, spec.Generate(rng, dims...), nil, *tilesStr, *gz)
	case "epinions":
		save(*out, nil, datasets.Epinions(rng), *tilesStr, *gz)
	case "ciao":
		save(*out, nil, datasets.Ciao(rng), *tilesStr, *gz)
	case "enron":
		save(*out, nil, datasets.Enron(rng), *tilesStr, *gz)
	case "face":
		save(*out, datasets.Face(rng, *scale), nil, *tilesStr, *gz)
	case "ensemble":
		dims := parseDims(*dimsStr)
		if len(dims) != 3 {
			log.Fatal("ensemble needs exactly 3 dims (configs x params x steps)")
		}
		save(*out, datasets.EnsembleSimulation(rng, dims[0], dims[1], dims[2]), nil, *tilesStr, *gz)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
}

// streamDense writes a DenseUniform-style tensor tile by tile. Every
// tile draws from its own generator (seed ^ tile id, like Phase 1's
// per-block seeding), so the output does not depend on write order and
// only one tile is ever in memory.
func streamDense(path string, dims, tiles []int, density float64, seed int64, gz bool) {
	w := createTiled(path, dims, tiles, gz)
	p := w.Pattern()
	var nnz int64
	for id, vec := range p.Positions() {
		_, size := p.Block(vec)
		t := tensor.NewDense(size...)
		trng := rand.New(rand.NewSource(tileSeed(seed, id)))
		for i := range t.Data {
			if trng.Float64() < density {
				t.Data[i] = trng.Float64() + 1e-9
				nnz++
			}
		}
		writeTile(w, vec, t)
	}
	closeTiled(w, path, dims, p, nnz)
}

// streamLowrank writes an exactly-rank-r tensor (plus optional noise)
// tile by tile: the factor matrices are small enough to hold in memory,
// and each tile is the model restricted to the tile's row ranges.
func streamLowrank(path string, dims, tiles []int, rank int, noise float64, seed int64, rng *rand.Rand, gz bool) {
	factors := make([]*mat.Matrix, len(dims))
	for m, d := range dims {
		factors[m] = mat.Random(d, rank, rng)
	}
	w := createTiled(path, dims, tiles, gz)
	p := w.Pattern()
	var nnz int64
	for id, vec := range p.Positions() {
		from, size := p.Block(vec)
		sub := make([]*mat.Matrix, len(factors))
		for m, f := range factors {
			sub[m] = f.SliceRows(from[m], from[m]+size[m])
		}
		t := cpals.NewKTensor(sub).Full()
		if noise > 0 {
			trng := rand.New(rand.NewSource(tileSeed(seed, id)))
			for i := range t.Data {
				t.Data[i] += noise * trng.NormFloat64()
			}
		}
		nnz += int64(t.NNZ())
		writeTile(w, vec, t)
	}
	closeTiled(w, path, dims, p, nnz)
}

// streamLowMLRank writes a LowMLRankSpec tensor tile by tile: only the
// Tucker core and factor panels are held in memory, and each tile is
// the core multiplied by the factors restricted to the tile's row
// ranges. The relative-noise scale needs the model's global norm,
// which datasets.ModelNorm computes exactly from core-sized Gram
// products, so a single pass suffices.
func streamLowMLRank(path string, dims, tiles []int, spec datasets.LowMLRankSpec, seed int64, rng *rand.Rand, gz bool) {
	core, factors := spec.Components(rng, dims...)
	var noiseScale float64
	if spec.Noise > 0 {
		numel := 1.0
		for _, d := range dims {
			numel *= float64(d)
		}
		noiseScale = spec.Noise * datasets.ModelNorm(core, factors) / math.Sqrt(numel)
	}
	w := createTiled(path, dims, tiles, gz)
	p := w.Pattern()
	var nnz int64
	for id, vec := range p.Positions() {
		from, size := p.Block(vec)
		sub := make([]*mat.Matrix, len(factors))
		for m, f := range factors {
			sub[m] = f.SliceRows(from[m], from[m]+size[m])
		}
		t := tensor.TTMChain(core, sub)
		if noiseScale > 0 {
			trng := rand.New(rand.NewSource(tileSeed(seed, id)))
			for i := range t.Data {
				t.Data[i] += noiseScale * trng.NormFloat64()
			}
		}
		nnz += int64(t.NNZ())
		writeTile(w, vec, t)
	}
	closeTiled(w, path, dims, p, nnz)
}

// tileSeed derives tile id's generator seed. The +1 keeps every tile
// stream distinct from the raw seed stream, which already drives the
// factor matrices in streamLowrank (id 0 would otherwise replay it).
func tileSeed(seed int64, id int) int64 {
	return seed ^ (int64(id)+1)*0x9E3779B9
}

func createTiled(path string, dims, tiles []int, gz bool) *tfile.Writer {
	var opts []tfile.WriterOption
	if gz {
		opts = append(opts, tfile.WithGzip())
	}
	w, err := tfile.Create(path, dims, tiles, opts...)
	if err != nil {
		log.Fatal(err)
	}
	return w
}

func writeTile(w *tfile.Writer, vec []int, t *tensor.Dense) {
	if err := w.WriteTile(vec, t); err != nil {
		log.Fatal(err)
	}
}

func closeTiled(w *tfile.Writer, path string, dims []int, p *twopcp.Pattern, nnz int64) {
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: tiled dense %v, %v tiles, %d nonzeros\n", path, dims, p.K, nnz)
}

// tileCounts parses -tiles ("4x4x4", or "4" broadcast to every mode);
// empty picks an automatic tiling bounded at 32 MiB per tile.
func tileCounts(s string, dims []int) []int {
	if s == "" {
		return tfile.AutoTiles(dims, 0)
	}
	t := parseDims(s)
	if len(t) == 1 && len(dims) > 1 {
		b := make([]int, len(dims))
		for i := range b {
			b[i] = t[0]
		}
		t = b
	}
	if len(t) != len(dims) {
		log.Fatalf("-tiles %q has %d entries for %d modes", s, len(t), len(dims))
	}
	for i := range t {
		if t[i] > dims[i] {
			t[i] = dims[i]
		}
	}
	return t
}

func parseDims(s string) []int {
	parts := strings.Split(strings.ToLower(s), "x")
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			log.Fatalf("bad dims %q", s)
		}
		dims[i] = v
	}
	return dims
}

func save(path string, d *tensor.Dense, c *tensor.COO, tilesStr string, gz bool) {
	if strings.HasSuffix(path, ".tptl") {
		if d == nil {
			log.Fatal("sparse kinds cannot be written as .tptl (tiled format is dense)")
		}
		// In-memory kinds honor -tiles/-gzip like the streaming ones.
		w := createTiled(path, d.Dims, tileCounts(tilesStr, d.Dims), gz)
		p := w.Pattern()
		for _, vec := range p.Positions() {
			from, size := p.Block(vec)
			writeTile(w, vec, d.SubTensor(from, size))
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: tiled dense %v, %v tiles, %d nonzeros\n", path, d.Dims, p.K, d.NNZ())
		return
	}
	switch {
	case d != nil:
		if err := twopcp.SaveDense(path, d); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: dense %v, %d nonzeros\n", path, d.Dims, d.NNZ())
	case c != nil:
		if err := twopcp.SaveCOO(path, c); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: sparse %v, %d nonzeros\n", path, c.Dims, c.NNZ())
	}
}

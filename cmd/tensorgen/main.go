// Command tensorgen generates the synthetic tensors used by the 2PCP
// experiments and examples, in the twopcp binary formats.
//
// Usage:
//
//	tensorgen -kind dense -dims 100x100x100 -density 0.2 -out t.tpdn
//	tensorgen -kind epinions -out epinions.tpsp
//
// Kinds: dense (uniform dense cube, -dims/-density), lowrank (-dims,
// -rank, -noise), epinions, ciao, enron (paper-shaped sparse stand-ins),
// face (-scale), ensemble (-dims).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"twopcp"
	"twopcp/internal/cpals"
	"twopcp/internal/datasets"
	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tensorgen: ")

	var (
		kind    = flag.String("kind", "dense", "dense|lowrank|epinions|ciao|enron|face|ensemble")
		dimsStr = flag.String("dims", "64x64x64", "mode sizes, e.g. 100x100x100")
		density = flag.Float64("density", 0.2, "nonzero density (dense kind)")
		rank    = flag.Int("rank", 5, "true rank (lowrank kind)")
		noise   = flag.Float64("noise", 0.01, "additive noise level (lowrank kind)")
		scale   = flag.Int("scale", 10, "downscale factor (face kind)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output file (required; .tpdn or .tpsp)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seed))

	switch *kind {
	case "dense":
		dims := parseDims(*dimsStr)
		x := datasets.DenseUniform(rng, *density, dims...)
		save(*out, x, nil)
	case "lowrank":
		dims := parseDims(*dimsStr)
		factors := make([]*mat.Matrix, len(dims))
		for m, d := range dims {
			factors[m] = mat.Random(d, *rank, rng)
		}
		x := cpals.NewKTensor(factors).Full()
		if *noise > 0 {
			for i := range x.Data {
				x.Data[i] += *noise * rng.NormFloat64()
			}
		}
		save(*out, x, nil)
	case "epinions":
		save(*out, nil, datasets.Epinions(rng))
	case "ciao":
		save(*out, nil, datasets.Ciao(rng))
	case "enron":
		save(*out, nil, datasets.Enron(rng))
	case "face":
		save(*out, datasets.Face(rng, *scale), nil)
	case "ensemble":
		dims := parseDims(*dimsStr)
		if len(dims) != 3 {
			log.Fatal("ensemble needs exactly 3 dims (configs x params x steps)")
		}
		save(*out, datasets.EnsembleSimulation(rng, dims[0], dims[1], dims[2]), nil)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
}

func parseDims(s string) []int {
	parts := strings.Split(strings.ToLower(s), "x")
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			log.Fatalf("bad dims %q", s)
		}
		dims[i] = v
	}
	return dims
}

func save(path string, d *tensor.Dense, c *tensor.COO) {
	switch {
	case d != nil:
		if err := twopcp.SaveDense(path, d); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: dense %v, %d nonzeros\n", path, d.Dims, d.NNZ())
	case c != nil:
		if err := twopcp.SaveCOO(path, c); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: sparse %v, %d nonzeros\n", path, c.Dims, c.NNZ())
	}
}

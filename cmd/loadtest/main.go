// Command loadtest drives the factor-serving query engine at load and
// reports sustained throughput — the proof behind the "serves heavy
// traffic" half of the roadmap's north star.
//
// Usage:
//
//	loadtest [-dims 64x64x64] [-rank 16] [-seed 1] [-workers N]
//	         [-duration 2s] [-k 10] [-min-qps 0] [-snap factors.snap]
//
// Without -snap, a deterministic random model of the given shape is
// written to a temporary factor snapshot first, so the run exercises the
// full mmap-open path. With -snap, an existing snapshot (e.g. one
// exported by `twopcp export-snapshot` or written by a done daemon job)
// is served instead.
//
// The harness first cross-checks a sample of point reads against a naive
// reference reconstruction, then runs three timed phases: single-cell
// point reads across all workers (the headline ops/sec), top-k sweeps,
// and nearest-neighbor sweeps. A nonzero -min-qps turns the point-read
// figure into a gate: the process exits 1 below it (CI smoke uses this).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"twopcp/internal/factorsnap"
	"twopcp/internal/mat"
	"twopcp/internal/serve"
)

func main() {
	dimsFlag := flag.String("dims", "64x64x64", "synthetic model shape, DxDx... (ignored with -snap)")
	rank := flag.Int("rank", 16, "synthetic model rank (ignored with -snap)")
	seed := flag.Int64("seed", 1, "synthetic model seed (ignored with -snap)")
	workers := flag.Int("workers", 0, "concurrent query goroutines (0 = GOMAXPROCS)")
	duration := flag.Duration("duration", 2*time.Second, "timed length of each phase")
	k := flag.Int("k", 10, "k for the top-k and nearest-neighbor phases")
	minQPS := flag.Float64("min-qps", 0, "fail (exit 1) if point reads/sec fall below this")
	snapPath := flag.String("snap", "", "serve an existing snapshot instead of a synthetic one")
	flag.Parse()

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	path := *snapPath
	if path == "" {
		dims, err := parseDims(*dimsFlag)
		if err != nil {
			fatal(err)
		}
		dir, err := os.MkdirTemp("", "loadtest-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		path = filepath.Join(dir, "factors.snap")
		if err := writeSynthetic(path, dims, *rank, *seed); err != nil {
			fatal(err)
		}
	}

	mdl, err := serve.Open(path, serve.Config{})
	if err != nil {
		fatal(err)
	}
	defer mdl.Close()
	dims := mdl.Dims()
	fmt.Printf("model: dims %v rank %d (%d modes), %d workers\n", dims, mdl.Rank(), mdl.Modes(), *workers)

	if err := sanityCheck(mdl, path); err != nil {
		fatal(err)
	}

	// Per-worker coordinate streams, precomputed so the timed loop
	// measures the query engine, not the RNG.
	const nCoords = 4096
	coords := make([][][]int, *workers)
	for w := range coords {
		rng := rand.New(rand.NewSource(int64(w) + 100))
		coords[w] = make([][]int, nCoords)
		for i := range coords[w] {
			at := make([]int, len(dims))
			for n := range at {
				at[n] = rng.Intn(dims[n])
			}
			coords[w][i] = at
		}
	}

	pointQPS := timed("point-read", *workers, *duration, func(w, i int) {
		if _, err := mdl.Reconstruct(coords[w][i%nCoords]); err != nil {
			panic(err)
		}
	})
	timed(fmt.Sprintf("topk(k=%d)", *k), *workers, *duration, func(w, i int) {
		at := coords[w][i%nCoords]
		if _, err := mdl.TopK(len(dims)-1, at, *k, nil); err != nil {
			panic(err)
		}
	})
	timed(fmt.Sprintf("nn(k=%d)", *k), *workers, *duration, func(w, i int) {
		at := coords[w][i%nCoords]
		if _, err := mdl.NN(0, at[0], *k, nil); err != nil {
			panic(err)
		}
	})

	if *minQPS > 0 && pointQPS < *minQPS {
		fmt.Fprintf(os.Stderr, "loadtest: point-read throughput %.0f qps below the %.0f qps floor\n", pointQPS, *minQPS)
		os.Exit(1)
	}
}

// timed runs fn across workers for the configured duration and reports
// aggregate throughput.
func timed(name string, workers int, d time.Duration, fn func(worker, i int)) float64 {
	var ops int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := int64(0)
			for i := 0; ; i++ {
				// Check the clock in batches; a per-op select would
				// dominate sub-100ns queries.
				if i%1024 == 0 {
					select {
					case <-stop:
						atomic.AddInt64(&ops, local)
						return
					default:
					}
				}
				fn(w, i)
				local++
			}
		}(w)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	qps := float64(ops) / elapsed
	fmt.Printf("%-14s %12d ops in %6.2fs  =  %12.0f ops/sec\n", name, ops, elapsed, qps)
	return qps
}

// sanityCheck cross-checks a sample of Model point reads against a naive
// reconstruction over the raw snapshot, guarding the harness against
// measuring a fast-but-wrong path.
func sanityCheck(mdl *serve.Model, path string) error {
	snap, err := factorsnap.Open(path)
	if err != nil {
		return err
	}
	defer snap.Close()
	dims := mdl.Dims()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 64; trial++ {
		at := make([]int, len(dims))
		for n := range at {
			at[n] = rng.Intn(dims[n])
		}
		got, err := mdl.Reconstruct(at)
		if err != nil {
			return err
		}
		want := 0.0
		for f := 0; f < snap.Rank; f++ {
			v := snap.Lambda[f]
			for n, m := range snap.Factors {
				v *= m.At(at[n], f)
			}
			want += v
		}
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if s := abs(want); s > 1 {
			scale = s
		}
		if diff > 1e-9*scale {
			return fmt.Errorf("sanity check: Reconstruct(%v) = %g, naive reference %g", at, got, want)
		}
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// writeSynthetic builds a deterministic random model and snapshots it.
func writeSynthetic(path string, dims []int, rank int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	lambda := make([]float64, rank)
	for f := range lambda {
		lambda[f] = rng.Float64() + 0.5
	}
	factors := make([]*mat.Matrix, len(dims))
	for n, d := range dims {
		m := mat.New(d, rank)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		factors[n] = m
	}
	return factorsnap.Write(path, lambda, factors, nil)
}

// parseDims parses "64x64x64".
func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	if len(parts) == 0 {
		return nil, fmt.Errorf("bad -dims %q", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -dims %q", s)
		}
		dims[i] = n
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadtest: %v\n", err)
	os.Exit(1)
}

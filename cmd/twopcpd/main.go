// Command twopcpd is the 2PCP decomposition daemon: a long-running HTTP
// service that accepts decomposition jobs, runs them on a worker pool
// through the same pipeline as the twopcp CLI, streams their progress as
// Server-Sent Events, and survives restarts without losing work.
//
// Usage:
//
//	twopcpd -data /var/lib/twopcp [-listen :7117] [-admin :7118] [-jobs N]
//
// Every job lives in its own directory under -data: a durably installed
// job record, the run's checkpoint directory, and the exported factor
// CSVs. On SIGTERM the daemon drains — running jobs finish their
// in-flight step, write a checkpoint, and the process exits with code 3,
// the same contract as the CLIs. A restarted daemon requeues the
// interrupted jobs and resumes them from their checkpoints, producing
// factors bit-identical to an uninterrupted run.
//
// The API is documented in docs/API.md; the service walkthrough is
// docs/service.md. The -admin listener serves net/http/pprof and a
// Prometheus /metrics endpoint with daemon job counters plus the
// library's run metrics aggregated across jobs.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"twopcp"
	"twopcp/internal/cli"
	"twopcp/internal/jobs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("twopcpd: ")

	var (
		dataDir = flag.String("data", "", "job store directory (required); each job gets a subdirectory with its record, checkpoints and factors")
		listen  = flag.String("listen", ":7117", "API listen address")
		admin   = flag.String("admin", "", "admin listen address for net/http/pprof and Prometheus /metrics (empty = off)")
		workers = flag.Int("jobs", 0, "concurrent decomposition jobs (0 = number of CPUs)")
	)
	flag.Parse()
	if *dataDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	store, err := jobs.OpenStore(*dataDir)
	if err != nil {
		log.Fatal(err)
	}
	reg := twopcp.NewRegistry()
	mgr, err := jobs.NewManager(store, jobs.Config{Workers: *workers, Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	if *admin != "" {
		cli.Serve(*admin, reg)
	}

	srv := &http.Server{Addr: *listen, Handler: jobs.NewServer(mgr).Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	log.Printf("serving on %s (data %s)", *listen, *dataDir)

	// The shared drain contract: first SIGTERM/SIGINT starts the drain,
	// a second one kills the process. Running jobs checkpoint and land in
	// state "interrupted"; the next daemon start requeues and resumes
	// them bit-exactly.
	stop := cli.InstallDrain("twopcpd")
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-stop:
	}

	// Drain the pool first — running jobs checkpoint and their event
	// streams end with a terminal job.state, so SSE clients disconnect on
	// their own — then shut the listener down, hard-closing whatever is
	// left after the grace period.
	mgr.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	cancel()
	srv.Close()
	log.Printf("drained; checkpointed jobs resume on next start")
	os.Exit(cli.ExitDrained)
}

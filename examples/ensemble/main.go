// Ensemble: the paper's motivating scientific workload (footnote 2) —
// ensemble simulations sampled over input-parameter configurations,
// recorded over time. The dense ⟨configuration, parameter, time⟩ tensor is
// decomposed out of core and the latent components are used to find the
// dominant simulation regimes.
//
//	go run ./examples/ensemble
package main

import (
	"fmt"
	"log"
	"math/rand"

	"twopcp"
	"twopcp/internal/datasets"
)

func main() {
	// 96 simulation configurations × 32 recorded parameters × 64 steps:
	// dense, smooth, decaying traces — typical ensemble output.
	rng := rand.New(rand.NewSource(11))
	x := datasets.EnsembleSimulation(rng, 96, 32, 64)
	fmt.Printf("ensemble tensor: %v, %.1f MB dense\n",
		x.Dims, float64(x.Len()*8)/1e6)

	// Decompose at rank 4 with a 4×2×2 grid (more cuts along the large
	// configuration mode) and a tight buffer — the out-of-core regime the
	// paper targets.
	res, err := twopcp.Decompose(x, twopcp.Options{
		Rank:           4,
		Partitions:     []int{4, 2, 2},
		Schedule:       twopcp.HilbertOrder,
		Replacement:    twopcp.Forward,
		BufferFraction: 1.0 / 3,
		Seed:           2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fit %.4f with %d data swaps (%.2f per virtual iteration)\n",
		res.Fit, res.RunStats.Swaps, res.RunStats.SwapsPerIter)

	// Component energies: column norms of the configuration factor tell
	// which latent regimes dominate the ensemble.
	cfgFactor := res.Model.Factors[0]
	norms := cfgFactor.ColumnNorms()
	fmt.Println("\nlatent regime strengths (configuration mode):")
	for f, n := range norms {
		fmt.Printf("  component %d: %.3f\n", f, n)
	}

	// Identify the configuration most aligned with the strongest
	// component — the "representative run" of the dominant regime.
	best, bestF := 0, 0
	for f := 1; f < len(norms); f++ {
		if norms[f] > norms[bestF] {
			bestF = f
		}
	}
	var bestVal float64
	for c := 0; c < cfgFactor.Rows; c++ {
		if v := cfgFactor.At(c, bestF); v > bestVal {
			bestVal, best = v, c
		}
	}
	fmt.Printf("\nrepresentative configuration of dominant regime: #%d (loading %.3f)\n",
		best, bestVal)
}

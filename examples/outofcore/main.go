// Outofcore: the paper's core experiment as an example — compare update
// schedules and buffer replacement policies on the same tensor under a
// tight memory budget, watching the I/O (data swaps) change while the
// accuracy stays put. Uses a real file-backed store, so the data units
// genuinely live on disk. The second half runs the same decomposition
// fully out-of-core: the input lives in a tiled .tptl file and Phase 1
// reads grid blocks on demand, producing bit-for-bit the same factors
// as the in-memory path.
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"text/tabwriter"

	"twopcp"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	x := twopcp.RandomDense(rng, 32, 32, 32)
	fmt.Printf("input: %v dense tensor, buffer capped at 1/3 of the working set\n\n", x.Dims)

	scratch, err := os.MkdirTemp("", "twopcp-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(scratch)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "schedule\treplacement\tswaps/iter\tfit\tphase2")
	for _, sched := range []twopcp.Schedule{
		twopcp.ModeCentric, twopcp.FiberOrder, twopcp.ZOrder, twopcp.HilbertOrder,
	} {
		for _, pol := range []twopcp.Replacement{twopcp.LRU, twopcp.MRU, twopcp.Forward} {
			dir := filepath.Join(scratch, fmt.Sprintf("%s-%s", sched, pol))
			res, err := twopcp.Decompose(x, twopcp.Options{
				Rank:           8,
				Partitions:     []int{4},
				Schedule:       sched,
				Replacement:    pol,
				BufferFraction: 1.0 / 3,
				MaxIters:       24,
				Tol:            1e-6,
				StoreDir:       dir,
				Seed:           6,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.4f\t%v\n",
				sched, pol, res.RunStats.SwapsPerIter, res.Fit, res.RunStats.Phase2Time.Round(1e6))
		}
	}
	w.Flush()
	fmt.Println("\nNote: accuracy is schedule- and policy-invariant; only I/O moves.")
	fmt.Println("Hilbert-order + forward-looking replacement minimizes swaps (paper Fig. 12).")

	// Part 2: fully out-of-core. The tensor is written as a tiled .tptl
	// file (tiling deliberately different from the run's 4×4×4 grid) and
	// decomposed straight from disk — Phase 1 never sees the whole
	// tensor, and Phase 2 keeps its data units in a file store.
	fmt.Println("\n--- fully out-of-core: tiled .tptl input ---")
	tpath := filepath.Join(scratch, "x.tptl")
	if err := twopcp.SaveTiled(tpath, x, []int{2, 3, 2}); err != nil {
		log.Fatal(err)
	}
	opts := twopcp.Options{
		Rank:           8,
		Partitions:     []int{4},
		Schedule:       twopcp.HilbertOrder,
		Replacement:    twopcp.Forward,
		BufferFraction: 1.0 / 3,
		MaxIters:       24,
		Tol:            1e-6,
		Seed:           6,
	}
	opts.StoreDir = filepath.Join(scratch, "units-mem")
	inMem, err := twopcp.Decompose(x, opts)
	if err != nil {
		log.Fatal(err)
	}
	opts.StoreDir = filepath.Join(scratch, "units-tiled")
	tiled, err := twopcp.DecomposeTiledFile(tpath, opts)
	if err != nil {
		log.Fatal(err)
	}
	identical := true
	for m := range inMem.Model.Factors {
		if !inMem.Model.Factors[m].Equal(tiled.Model.Factors[m]) {
			identical = false
		}
	}
	fmt.Printf("in-memory : fit=%.6f swaps=%d\n", inMem.Fit, inMem.RunStats.Swaps)
	fmt.Printf("tiled file: fit=%.6f swaps=%d\n", tiled.Fit, tiled.RunStats.Swaps)
	fmt.Printf("factors bit-for-bit identical: %v\n", identical)
}

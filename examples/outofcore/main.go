// Outofcore: the paper's core experiment as an example — compare update
// schedules and buffer replacement policies on the same tensor under a
// tight memory budget, watching the I/O (data swaps) change while the
// accuracy stays put. Uses a real file-backed store, so the data units
// genuinely live on disk.
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"text/tabwriter"

	"twopcp"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	x := twopcp.RandomDense(rng, 32, 32, 32)
	fmt.Printf("input: %v dense tensor, buffer capped at 1/3 of the working set\n\n", x.Dims)

	scratch, err := os.MkdirTemp("", "twopcp-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(scratch)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "schedule\treplacement\tswaps/iter\tfit\tphase2")
	for _, sched := range []twopcp.Schedule{
		twopcp.ModeCentric, twopcp.FiberOrder, twopcp.ZOrder, twopcp.HilbertOrder,
	} {
		for _, pol := range []twopcp.Replacement{twopcp.LRU, twopcp.MRU, twopcp.Forward} {
			dir := filepath.Join(scratch, fmt.Sprintf("%s-%s", sched, pol))
			res, err := twopcp.Decompose(x, twopcp.Options{
				Rank:           8,
				Partitions:     []int{4},
				Schedule:       sched,
				Replacement:    pol,
				BufferFraction: 1.0 / 3,
				MaxIters:       24,
				Tol:            1e-6,
				StoreDir:       dir,
				Seed:           6,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.4f\t%v\n",
				sched, pol, res.SwapsPerIter, res.Fit, res.Phase2Time.Round(1e6))
		}
	}
	w.Flush()
	fmt.Println("\nNote: accuracy is schedule- and policy-invariant; only I/O moves.")
	fmt.Println("Hilbert-order + forward-looking replacement minimizes swaps (paper Fig. 12).")
}

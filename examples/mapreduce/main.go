// Mapreduce: the distributed strong-configuration pipeline of the paper —
// Phase 1 executed with the paper's exact map/reduce operators on the
// in-process MapReduce engine, stitched by Phase 2, and compared against
// the HaTen2-style baseline including its communication bill and the
// simulated cluster-memory failure on a larger tensor.
//
//	go run ./examples/mapreduce
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/cpals"
	"twopcp/internal/datasets"
	"twopcp/internal/grid"
	"twopcp/internal/haten2"
	"twopcp/internal/mapreduce"
	"twopcp/internal/phase1"
	"twopcp/internal/refine"
	"twopcp/internal/schedule"
	"twopcp/internal/tensor"
)

func main() {
	rng := rand.New(rand.NewSource(13))
	dense := datasets.DenseUniform(rng, 0.2, 48, 48, 48)
	x := tensor.FromDense(dense)
	fmt.Printf("input: 48×48×48 dense tensor (density 0.2, %d nonzeros)\n\n", x.NNZ())

	// --- 2PCP with MapReduce Phase 1 -----------------------------------
	p := grid.UniformCube(3, 48, 2)
	start := time.Now()
	p1, counters, err := phase1.RunMapReduce(x, p, phase1.Options{
		Rank: 10, MaxIters: 10, Tol: 1e-3, Seed: 1,
	}, mapreduce.Config{NumReducers: 8})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := refine.New(refine.Config{
		Phase1: p1, Store: blockstore.NewMemStore(),
		Schedule: schedule.ZOrder, Policy: buffer.Forward,
		BufferFraction: 0.5, MaxVirtualIters: 20, Tol: 1e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fit := cpals.NewKTensor(res.Factors).FitSparse(x)
	fmt.Println("2PCP (MapReduce Phase 1 + buffered Phase 2):")
	fmt.Printf("  time            : %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  fit             : %.4f\n", fit)
	fmt.Printf("  phase-1 shuffle : %.1f MB over %d map outputs\n",
		float64(counters.ShuffleBytes)/1e6, counters.MapOutputRecords)
	fmt.Printf("  phase-2 swaps   : %d (%.2f per virtual iteration)\n\n",
		res.BufferStats.Fetches, res.SwapsPerVirtualIter)

	// --- HaTen2 baseline -------------------------------------------------
	start = time.Now()
	kt, info, err := haten2.Decompose(x, haten2.Options{
		Rank: 10, MaxIters: 1, Seed: 1,
		MR: mapreduce.Config{NumReducers: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("HaTen2-style baseline (1 iteration, as measured in the paper):")
	fmt.Printf("  time            : %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  fit             : %.4f\n", kt.FitSparse(x))
	fmt.Printf("  shuffle         : %.1f MB across %d jobs — every ALS update re-ships the tensor\n\n",
		float64(info.Counters.ShuffleBytes)/1e6, info.Jobs)

	// --- The FAILS row ---------------------------------------------------
	big := tensor.FromDense(datasets.DenseUniform(rng, 0.2, 72, 72, 72))
	fmt.Printf("retrying HaTen2 on 72×72×72 (%d nonzeros) with the same cluster memory budget...\n", big.NNZ())
	_, _, err = haten2.Decompose(big, haten2.Options{
		Rank: 10, MaxIters: 1, Seed: 1,
		MR: mapreduce.Config{NumReducers: 8, ReducerMemoryBytes: 512 << 10},
	})
	switch {
	case errors.Is(err, haten2.ErrResources):
		fmt.Printf("  FAILS: %v\n", err)
		fmt.Println("  (2PCP handles the same tensor: each Phase-1 block fits in a single worker.)")
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Println("  unexpectedly succeeded — raise the tensor size or lower the budget")
	}
}

// Nonnegative decomposition: factor a synthetic count-like tensor under
// the nonnegativity constraint and compare against the unconstrained
// solve. Exits non-zero if any factor entry is negative, so CI can run it
// as the constrained-pipeline smoke.
//
//	go run ./examples/nonnegative
package main

import (
	"fmt"
	"log"
	"math/rand"

	"twopcp"
)

func main() {
	// Ground truth: an exactly rank-4 nonnegative 40×40×40 tensor (all
	// factor entries uniform in [0,1)) plus nonnegative noise — the shape
	// of co-occurrence counts or topic-like data, where negative factor
	// entries are meaningless and unconstrained ALS still produces them.
	rng := rand.New(rand.NewSource(11))
	truth := make([]*twopcp.Matrix, 3)
	for m := range truth {
		truth[m] = &twopcp.Matrix{Rows: 40, Cols: 4, Data: make([]float64, 40*4)}
		for i := range truth[m].Data {
			truth[m].Data[i] = rng.Float64()
		}
	}
	x := twopcp.NewKTensor(truth).Full()
	for i := range x.Data {
		x.Data[i] += 0.05 * rng.Float64()
	}
	fmt.Printf("input: %d×%d×%d nonnegative tensor\n", x.Dims[0], x.Dims[1], x.Dims[2])

	opts := twopcp.Options{
		Rank:           4,
		Partitions:     []int{2, 2, 2},
		Schedule:       twopcp.HilbertOrder,
		Replacement:    twopcp.Forward,
		BufferFraction: 0.5,
		Seed:           1,
	}

	// Unconstrained baseline: a good fit, but sign-indefinite factors.
	plain, err := twopcp.Decompose(x, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("least squares: fit %.4f, most negative factor entry %.4g\n",
		plain.Fit, minEntry(plain))

	// The same pipeline with Constraint set: every factor entry ≥ 0.
	opts.Constraint = twopcp.ConstraintNonneg
	nn, err := twopcp.Decompose(x, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nonnegative  : fit %.4f, most negative factor entry %.4g\n",
		nn.Fit, minEntry(nn))
	fmt.Printf("               %d virtual iterations, %d swaps\n", nn.VirtualIters, nn.RunStats.Swaps)

	if min := minEntry(nn); min < 0 {
		log.Fatalf("constraint violated: factor entry %g < 0", min)
	}
	fmt.Println("all factor entries are nonnegative")
}

func minEntry(res *twopcp.Result) float64 {
	min := 0.0
	first := true
	for _, a := range res.Model.Factors {
		for _, v := range a.Data {
			if first || v < min {
				min, first = v, false
			}
		}
	}
	return min
}

// Quickstart: decompose a synthetic low-rank tensor with 2PCP and verify
// the recovered model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"twopcp"
)

func main() {
	// Build an exactly rank-3 48×48×48 tensor: the ground truth the
	// decomposition should recover.
	rng := rand.New(rand.NewSource(7))
	truth := make([]*twopcp.Matrix, 3)
	for m := range truth {
		truth[m] = &twopcp.Matrix{Rows: 48, Cols: 3, Data: make([]float64, 48*3)}
		for i := range truth[m].Data {
			truth[m].Data[i] = rng.Float64()
		}
	}
	x := twopcp.NewKTensor(truth).Full()
	fmt.Printf("input: %d×%d×%d dense tensor (%d cells)\n",
		x.Dims[0], x.Dims[1], x.Dims[2], x.Len())

	// Decompose with the paper's best configuration: Hilbert-order
	// scheduling with forward-looking buffer replacement, at a buffer of
	// half the total space requirement.
	res, err := twopcp.Decompose(x, twopcp.Options{
		Rank:           3,
		Partitions:     []int{2, 2, 2},
		Schedule:       twopcp.HilbertOrder,
		Replacement:    twopcp.Forward,
		BufferFraction: 0.5,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fit          : %.4f (1.0 = exact)\n", res.Fit)
	fmt.Printf("phase 1      : %v (parallel per-block ALS)\n", res.RunStats.Phase1Time)
	fmt.Printf("phase 2      : %v (%d virtual iterations, converged=%v)\n",
		res.RunStats.Phase2Time, res.VirtualIters, res.Converged)
	fmt.Printf("data swaps   : %d (%.2f per virtual iteration)\n", res.RunStats.Swaps, res.RunStats.SwapsPerIter)

	// The model gives factor matrices per mode; inspect the first factor.
	a := res.Model.Factors[0]
	fmt.Printf("factor A(1)  : %d×%d matrix, first row %v\n", a.Rows, a.Cols, a.Row(0))

	// Evaluate the model at a few cells and compare to the input.
	for _, idx := range [][]int{{0, 0, 0}, {10, 20, 30}, {47, 47, 47}} {
		fmt.Printf("X%v = %.4f   X̂%v = %.4f\n",
			idx, x.At(idx...), idx, res.Model.At(idx...))
	}
}

// Socialnetwork: multi-aspect analysis of a sparse ⟨user, item, category⟩
// rating tensor (the Epinions/Ciao schema from the paper's evaluation):
// decompose, then read user communities and item clusters off the factors.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"twopcp"
	"twopcp/internal/datasets"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	x := datasets.Epinions(rng) // 170×1000×18, density ≈ 2.4e-4
	fmt.Printf("rating tensor: %v with %d ratings\n", x.Dims, x.NNZ())

	const rank = 5
	res, err := twopcp.DecomposeSparse(x, twopcp.Options{
		Rank:        rank,
		Partitions:  []int{2, 4, 2}, // cut the wide item mode harder
		Schedule:    twopcp.ZOrder,
		Replacement: twopcp.Forward,
		Seed:        4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fit %.4f after %v + %v (phase 1 + phase 2)\n\n",
		res.Fit, res.RunStats.Phase1Time, res.RunStats.Phase2Time)

	users, items, cats := res.Model.Factors[0], res.Model.Factors[1], res.Model.Factors[2]
	for f := 0; f < rank; f++ {
		fmt.Printf("component %d:\n", f)
		fmt.Printf("  top users     : %v\n", topK(users, f, 3))
		fmt.Printf("  top items     : %v\n", topK(items, f, 3))
		fmt.Printf("  top categories: %v\n", topK(cats, f, 2))
	}
}

// topK returns the k row indexes with the largest loading in column f.
func topK(m *twopcp.Matrix, f, k int) []int {
	type pair struct {
		idx int
		v   float64
	}
	all := make([]pair, m.Rows)
	for i := 0; i < m.Rows; i++ {
		v := m.At(i, f)
		if v < 0 {
			v = -v
		}
		all[i] = pair{i, v}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].v > all[b].v })
	out := make([]int, 0, k)
	for i := 0; i < k && i < len(all); i++ {
		out = append(out, all[i].idx)
	}
	return out
}

package twopcp_test

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePort reserves a localhost port for a daemon listener.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches twopcpd and waits for /healthz to come up.
func startDaemon(t *testing.T, bin, data, listen, admin string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	args := []string{"-data", data, "-listen", listen}
	if admin != "" {
		args = append(args, "-admin", admin)
	}
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + listen + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, &stderr
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("daemon never became healthy\nstderr: %s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonLifecycle is the end-to-end service contract: submit a job
// over HTTP through the twopcp client, stream its progress, SIGTERM the
// daemon mid-run (drain must checkpoint and exit 3), restart the daemon
// (the job must resume automatically), and download factors that are
// byte-identical to an uninterrupted local CLI run.
func TestDaemonLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	tensorgen := buildCmd(t, dir, "tensorgen")
	twopcpBin := buildCmd(t, dir, "twopcp")
	daemonBin := buildCmd(t, dir, "twopcpd")

	tpath := filepath.Join(dir, "x.tptl")
	runCmd(t, tensorgen, "-kind", "lowrank", "-dims", "30x30x30", "-rank", "3",
		"-noise", "0.3", "-tiles", "3x3x3", "-seed", "11", "-out", tpath)

	// Uninterrupted local reference run with the same configuration the
	// job will carry.
	runCmd(t, twopcpBin, "-in", tpath, "-rank", "3", "-parts", "3", "-buffer", "0.5",
		"-iters", "500", "-tol=-1", "-seed", "11",
		"-out-prefix", filepath.Join(dir, "ref"))

	data := filepath.Join(dir, "data")
	listen := freePort(t)
	admin := freePort(t)
	daemon, stderr := startDaemon(t, daemonBin, data, listen, admin)
	server := "http://" + listen

	// Submit through the client subcommand; stdout is the job ID.
	var out bytes.Buffer
	submit := exec.Command(twopcpBin, "submit", "-server", server, "-in", tpath,
		"-rank", "3", "-parts", "3", "-buffer", "0.5", "-iters", "500",
		"-tol", "-1", "-seed", "11", "-checkpoint-steps", "1")
	submit.Stdout = &out
	submit.Stderr = os.Stderr
	if err := submit.Run(); err != nil {
		t.Fatalf("submit: %v", err)
	}
	jobID := strings.TrimSpace(out.String())
	if jobID == "" {
		t.Fatal("submit printed no job ID")
	}

	// Watch the SSE stream in the background; it must carry events and
	// terminate on its own when the daemon drains the job.
	watchOut := make(chan string, 1)
	go func() {
		var buf bytes.Buffer
		watch := exec.Command(twopcpBin, "watch", "-server", server, jobID)
		watch.Stdout = &buf
		watch.Run()
		watchOut <- buf.String()
	}()

	// Wait for the job's Phase-2 checkpoint, scrape the admin /metrics
	// mid-run, then SIGTERM the daemon.
	phase2 := filepath.Join(data, jobID, "ckpt", "phase2.ckpt")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(phase2); err == nil {
			break
		}
		if time.Now().After(deadline) {
			daemon.Process.Kill()
			t.Fatalf("no Phase-2 checkpoint appeared within 60s\ndaemon stderr: %s", stderr.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Get("http://" + admin + "/metrics")
	if err != nil {
		t.Fatalf("admin /metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "jobs_running") {
		t.Fatalf("/metrics has no jobs_running gauge:\n%.500s", metrics)
	}

	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err = daemon.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("drained daemon: err = %v, want exit code 3\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "draining") {
		t.Errorf("no drain notice on daemon stderr:\n%s", stderr.String())
	}

	select {
	case stream := <-watchOut:
		if !strings.Contains(stream, `"state":"running"`) && !strings.Contains(stream, "job.state") {
			t.Errorf("watch stream carried no state events:\n%.500s", stream)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("watch subcommand never exited after drain")
	}

	// Restart: the interrupted job requeues and resumes from its
	// checkpoint without any client action.
	listen2 := freePort(t)
	daemon2, stderr2 := startDaemon(t, daemonBin, data, listen2, "")
	server = "http://" + listen2
	defer func() {
		daemon2.Process.Kill()
		daemon2.Wait()
	}()

	deadline = time.Now().Add(120 * time.Second)
	for {
		var status bytes.Buffer
		st := exec.Command(twopcpBin, "status", "-server", server, jobID)
		st.Stdout = &status
		if err := st.Run(); err != nil {
			t.Fatalf("status: %v\ndaemon stderr: %s", err, stderr2.String())
		}
		if strings.Contains(status.String(), `"state": "done"`) {
			break
		}
		if strings.Contains(status.String(), `"failed"`) || strings.Contains(status.String(), `"quarantined"`) {
			t.Fatalf("resumed job ended badly:\n%s", status.String())
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished after restart; last status:\n%s", status.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Downloaded factors must match the uninterrupted local run byte for
	// byte — the whole durability story in one assertion.
	for mode := 0; mode < 3; mode++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/factors/%d", server, jobID, mode))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("factor %d download: status %d err %v", mode, resp.StatusCode, err)
		}
		want, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("ref-mode%d.csv", mode)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("mode-%d factors differ between drained+restarted service job and local run", mode)
		}
	}
}
